// Frame-parallel MJPEG decode: the thread-backend decode graph must be
// bit-identical across worker counts, window sizes and entropy-worker
// counts, and must publish the live decode gauges. Runs the thread
// executor with concurrent frames in flight, so it joins the
// ThreadSanitizer suite.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "xspcl/loader.hpp"

namespace {

using apps::MjpegDecodeConfig;
using apps::MjpegDecodeResult;

// Scaled-down 4K stand-in: big enough for several MCU rows and restart
// segments, small enough to keep the suite fast.
MjpegDecodeConfig small_config() {
  MjpegDecodeConfig c;
  c.width = 192;
  c.height = 144;
  c.frames = 12;
  c.clip_frames = 4;
  c.quality = 80;
  c.seed = 601;
  c.slices = 2;
  c.window = 4;
  c.workers = 4;
  c.restart = 4;
  return c;
}

TEST(MjpegParallel, SpecBuilds) {
  components::register_standard_globally();
  auto prog = xspcl::build_program(apps::mjpeg_xspcl(small_config()),
                                   hinch::ComponentRegistry::global());
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
}

TEST(MjpegParallel, ChecksumStableAcrossWorkerCounts) {
  MjpegDecodeConfig base = small_config();
  base.workers = 1;
  base.window = 1;
  MjpegDecodeResult serial = apps::run_mjpeg_decode(base);
  ASSERT_EQ(serial.frames, base.frames);
  ASSERT_NE(serial.checksum, 0u);

  for (int workers : {2, 4}) {
    for (int window : {2, 4}) {
      MjpegDecodeConfig c = base;
      c.workers = workers;
      c.window = window;
      MjpegDecodeResult r = apps::run_mjpeg_decode(c);
      EXPECT_EQ(r.frames, serial.frames)
          << workers << " workers, window " << window;
      EXPECT_EQ(r.checksum, serial.checksum)
          << workers << " workers, window " << window;
    }
  }
}

TEST(MjpegParallel, EntropyWorkersDoNotChangeOutput) {
  MjpegDecodeConfig base = small_config();
  MjpegDecodeResult one = apps::run_mjpeg_decode(base);

  MjpegDecodeConfig par = base;
  par.entropy_workers = 4;
  MjpegDecodeResult r = apps::run_mjpeg_decode(par);
  EXPECT_EQ(r.checksum, one.checksum);

  // Without restart markers the parallel request silently decodes
  // serially — still identical.
  MjpegDecodeConfig norst = base;
  norst.restart = 0;
  norst.entropy_workers = 4;
  MjpegDecodeConfig norst_serial = norst;
  norst_serial.entropy_workers = 1;
  EXPECT_EQ(apps::run_mjpeg_decode(norst).checksum,
            apps::run_mjpeg_decode(norst_serial).checksum);
}

TEST(MjpegParallel, PublishesLiveDecodeGauges) {
  MjpegDecodeConfig c = small_config();
  MjpegDecodeResult r = apps::run_mjpeg_decode(c);
  EXPECT_EQ(r.frames_done_metric, c.frames);
  EXPECT_GT(r.compressed_bytes, 0u);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.frames_per_sec, 0.0);
  EXPECT_GT(r.mb_per_sec, 0.0);
}

}  // namespace
