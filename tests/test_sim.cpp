#include <gtest/gtest.h>

#include <algorithm>

#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace {

using sim::CacheConfig;
using sim::Cycles;
using sim::Engine;
using sim::MemorySystem;

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 30u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    e.schedule_at(7, [&order, i] { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) e.schedule_after(5, chain);
  };
  e.schedule_at(0, chain);
  EXPECT_EQ(e.run(), 45u);
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(e.events_processed(), 10u);
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine e;
  Cycles last = 0;
  for (int i = 0; i < 20; ++i)
    e.schedule_at(static_cast<Cycles>(i * 3), [&, i] {
      EXPECT_GE(e.now(), last);
      last = e.now();
      EXPECT_EQ(e.now(), static_cast<Cycles>(i * 3));
    });
  e.run();
}

CacheConfig small_cache(int cores) {
  CacheConfig c;
  c.cores = cores;
  c.l1_bytes = 4 * 1024;   // 4 chunks
  c.l2_bytes = 16 * 1024;  // 16 chunks
  c.chunk_bytes = 1024;
  c.l2_cycles_per_chunk = 100;
  c.mem_cycles_per_chunk = 1000;
  return c;
}

TEST(Cache, ColdMissThenL1Hit) {
  MemorySystem mem(small_cache(1));
  sim::RegionId r = mem.register_region(2048, "buf");
  EXPECT_EQ(mem.access(0, r, 0, 2048, false), 2000u);  // 2 chunks from mem
  EXPECT_EQ(mem.access(0, r, 0, 2048, false), 0u);     // both in L1 now
  EXPECT_EQ(mem.stats().mem_fetches, 2u);
  EXPECT_EQ(mem.stats().l1_hits, 2u);
}

TEST(Cache, L1EvictionFallsBackToL2) {
  MemorySystem mem(small_cache(1));
  sim::RegionId r = mem.register_region(8 * 1024, "buf");
  mem.access(0, r, 0, 8 * 1024, false);  // 8 chunks; L1 keeps last 4
  // First chunk was evicted from L1 but lives in L2.
  EXPECT_EQ(mem.access(0, r, 0, 1024, false), 100u);
  EXPECT_EQ(mem.stats().l2_hits, 1u);
}

TEST(Cache, L2EvictionGoesToMemory) {
  MemorySystem mem(small_cache(1));
  sim::RegionId r = mem.register_region(32 * 1024, "buf");
  mem.access(0, r, 0, 32 * 1024, false);  // 32 chunks > L2's 16
  EXPECT_EQ(mem.access(0, r, 0, 1024, false), 1000u);  // evicted everywhere
}

TEST(Cache, PerCoreL1IsPrivate) {
  MemorySystem mem(small_cache(2));
  sim::RegionId r = mem.register_region(1024, "buf");
  EXPECT_EQ(mem.access(0, r, 0, 1024, false), 1000u);  // core 0: cold
  EXPECT_EQ(mem.access(1, r, 0, 1024, false), 100u);   // core 1: from L2
  EXPECT_EQ(mem.access(0, r, 0, 1024, false), 0u);     // both hold it
  EXPECT_EQ(mem.access(1, r, 0, 1024, false), 0u);
}

TEST(Cache, WritesInvalidateOtherCores) {
  MemorySystem mem(small_cache(2));
  sim::RegionId r = mem.register_region(1024, "buf");
  mem.access(0, r, 0, 1024, false);
  mem.access(1, r, 0, 1024, false);
  // Core 0 writes: core 1's copy must be invalidated.
  mem.access(0, r, 0, 1024, true);
  EXPECT_EQ(mem.stats().invalidations, 1u);
  EXPECT_EQ(mem.access(1, r, 0, 1024, false), 100u);  // L2, not L1
}

TEST(Cache, ReleasedRegionIsForgotten) {
  MemorySystem mem(small_cache(1));
  sim::RegionId r = mem.register_region(1024, "buf");
  mem.access(0, r, 0, 1024, false);
  mem.release_region(r);
  sim::RegionId r2 = mem.register_region(1024, "buf2");
  EXPECT_EQ(mem.access(0, r2, 0, 1024, false), 1000u);
}

TEST(Cache, PartialChunkChargesWholeChunk) {
  MemorySystem mem(small_cache(1));
  sim::RegionId r = mem.register_region(4096, "buf");
  EXPECT_EQ(mem.access(0, r, 100, 8, false), 1000u);   // one chunk
  EXPECT_EQ(mem.access(0, r, 1000, 48, false), 1000u); // spans chunk 0-1;
  // chunk 0 already resident, chunk 1 cold.
  EXPECT_EQ(mem.stats().l1_hits, 1u);
}

TEST(Cache, ZeroLengthIsFree) {
  MemorySystem mem(small_cache(1));
  sim::RegionId r = mem.register_region(1024, "buf");
  EXPECT_EQ(mem.access(0, r, 0, 0, true), 0u);
  EXPECT_EQ(mem.stats().accesses, 0u);
}

TEST(Cache, StatsRates) {
  MemorySystem mem(small_cache(1));
  sim::RegionId r = mem.register_region(1024, "buf");
  mem.access(0, r, 0, 1024, false);
  mem.access(0, r, 0, 1024, false);
  EXPECT_DOUBLE_EQ(mem.stats().l1_hit_rate(), 0.5);
  mem.reset_stats();
  EXPECT_EQ(mem.stats().accesses, 0u);
}

// Streaming through a large buffer with a small cache: every pass costs
// the same (no accidental retention), the classic LRU streaming pattern.
class StreamingPassTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamingPassTest, RepeatedPassesKeepMissing) {
  MemorySystem mem(small_cache(1));
  uint64_t bytes = static_cast<uint64_t>(GetParam()) * 1024;
  sim::RegionId r = mem.register_region(bytes, "big");
  Cycles first = mem.access(0, r, 0, bytes, false);
  Cycles second = mem.access(0, r, 0, bytes, false);
  if (bytes > 16 * 1024) {
    EXPECT_EQ(first, second);  // fully streaming: nothing retained
  } else {
    EXPECT_LE(second, first);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StreamingPassTest,
                         ::testing::Values(2, 8, 16, 32, 64));

// --- reference-model equivalence -------------------------------------------------
//
// A deliberately naive reference implementation of the same cache
// semantics (per-core L1 LRU, shared L2 LRU, write invalidation),
// exercised against MemorySystem with seeded random access sequences:
// every access must be classified identically.
namespace refmodel {

struct Lru {
  size_t capacity;
  std::vector<uint64_t> order;  // front = most recent

  bool contains(uint64_t k) const {
    return std::find(order.begin(), order.end(), k) != order.end();
  }
  void touch(uint64_t k) {
    auto it = std::find(order.begin(), order.end(), k);
    if (it != order.end()) order.erase(it);
    order.insert(order.begin(), k);
    while (order.size() > capacity) order.pop_back();
  }
  void erase(uint64_t k) {
    auto it = std::find(order.begin(), order.end(), k);
    if (it != order.end()) order.erase(it);
  }
};

enum class Level { kL1, kL2, kMem };

struct Model {
  std::vector<Lru> l1;
  Lru l2;

  Model(int cores, size_t l1_chunks, size_t l2_chunks) {
    l1.assign(static_cast<size_t>(cores), Lru{l1_chunks, {}});
    l2 = Lru{l2_chunks, {}};
  }

  Level access(int core, uint64_t chunk, bool write) {
    Level level;
    if (l1[static_cast<size_t>(core)].contains(chunk)) {
      level = Level::kL1;
    } else if (l2.contains(chunk)) {
      level = Level::kL2;
    } else {
      level = Level::kMem;
    }
    // The real model refreshes L2 recency only on L1 misses (an L1 hit
    // never reaches the L2).
    if (level != Level::kL1) l2.touch(chunk);
    l1[static_cast<size_t>(core)].touch(chunk);
    if (write) {
      for (size_t c = 0; c < l1.size(); ++c)
        if (static_cast<int>(c) != core) l1[c].erase(chunk);
    }
    return level;
  }
};

}  // namespace refmodel

class CacheEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheEquivalenceTest, MatchesNaiveReferenceModel) {
  const int cores = 3;
  CacheConfig cfg = small_cache(cores);
  MemorySystem mem(cfg);
  // One region of 24 chunks; reference tracks chunk indices directly.
  const uint64_t chunks = 24;
  sim::RegionId region =
      mem.register_region(chunks * cfg.chunk_bytes, "buf");
  refmodel::Model ref(cores, cfg.l1_bytes / cfg.chunk_bytes,
                      cfg.l2_bytes / cfg.chunk_bytes);

  support::SplitMix64 rng(GetParam());
  for (int step = 0; step < 2000; ++step) {
    int core = static_cast<int>(rng.next_below(cores));
    uint64_t chunk = rng.next_below(chunks);
    bool write = rng.next_below(3) == 0;
    Cycles cost = mem.access(core, region, chunk * cfg.chunk_bytes,
                             cfg.chunk_bytes, write);
    refmodel::Level expect = ref.access(core, chunk, write);
    Cycles want = expect == refmodel::Level::kL1 ? 0
                  : expect == refmodel::Level::kL2
                      ? cfg.l2_cycles_per_chunk
                      : cfg.mem_cycles_per_chunk;
    ASSERT_EQ(cost, want)
        << "seed=" << GetParam() << " step=" << step << " core=" << core
        << " chunk=" << chunk << " write=" << write;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheEquivalenceTest,
                         ::testing::Range<uint64_t>(100, 112));

}  // namespace
