// Determinism regression tests for the simulator hot path: repeated
// runs, both LRU cache engines, charge-trace replay, and the parallel
// sweep driver must all produce identical simulated results, and a
// golden snapshot pins the absolute cycle counts of one small
// configuration so an accidental semantic change to the cache model or
// event engine fails loudly instead of silently shifting every figure.
#include <gtest/gtest.h>

#include <cstdlib>

#include "bench/bench_util.hpp"
#include "hinch/region_table.hpp"

namespace {

apps::PipConfig small_pip() {
  apps::PipConfig c = bench::paper_pip(1);
  c.frames = 6;
  return c;
}

apps::JpipConfig small_jpip() {
  apps::JpipConfig c = bench::paper_jpip(1);
  c.frames = 3;
  return c;
}

hinch::SimResult run_once(const std::string& spec, int64_t frames, int cores,
                          sim::LruImpl impl) {
  auto prog = bench::build_program(spec);
  hinch::RunConfig run;
  run.iterations = frames;
  hinch::SimParams sim;
  sim.cores = cores;
  sim.cache.lru_impl = impl;
  return hinch::run_on_sim(*prog, run, sim);
}

void expect_same(const hinch::SimResult& a, const hinch::SimResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_TRUE(a.mem == b.mem);
  EXPECT_EQ(a.core_busy, b.core_busy);
  EXPECT_EQ(a.queue_wait_cycles, b.queue_wait_cycles);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.task_cycles, b.task_cycles);
  EXPECT_EQ(a.task_runs, b.task_runs);
  EXPECT_EQ(a.sched.jobs_executed, b.sched.jobs_executed);
  EXPECT_EQ(a.sched.jobs_skipped, b.sched.jobs_skipped);
}

TEST(SimDeterminism, RepeatedRunsIdentical) {
  const std::string spec = apps::pip_xspcl(small_pip());
  hinch::SimResult a = run_once(spec, 6, 2, sim::LruImpl::kFlat);
  hinch::SimResult b = run_once(spec, 6, 2, sim::LruImpl::kFlat);
  expect_same(a, b);
}

TEST(SimDeterminism, LruEnginesAgree) {
  for (int cores : {1, 3}) {
    const std::string pip = apps::pip_xspcl(small_pip());
    expect_same(run_once(pip, 6, cores, sim::LruImpl::kFlat),
                run_once(pip, 6, cores, sim::LruImpl::kListReference));
    const std::string jpip = apps::jpip_xspcl(small_jpip());
    expect_same(run_once(jpip, 3, cores, sim::LruImpl::kFlat),
                run_once(jpip, 3, cores, sim::LruImpl::kListReference));
  }
}

// The 63-core ceiling fix: beyond 63 cores the flat engine switches to
// pooled multi-word presence masks (64 cores + the tile L2 bit no
// longer fit one word) and must stay stat-identical to the reference
// engine. 64 straddles the boundary, 128/256 are the ROADMAP regime the
// engine used to abort on.
TEST(SimDeterminism, WideMaskEnginesAgree) {
  const std::string pip = apps::pip_xspcl(small_pip());
  for (int cores : {64, 128, 256}) {
    expect_same(run_once(pip, 6, cores, sim::LruImpl::kFlat),
                run_once(pip, 6, cores, sim::LruImpl::kListReference));
  }
  const std::string jpip = apps::jpip_xspcl(small_jpip());
  expect_same(run_once(jpip, 3, 64, sim::LruImpl::kFlat),
              run_once(jpip, 3, 64, sim::LruImpl::kListReference));
}

TEST(SimDeterminism, SequentialEnginesAgree) {
  sim::CacheConfig flat;
  flat.lru_impl = sim::LruImpl::kFlat;
  sim::CacheConfig list;
  list.lru_impl = sim::LruImpl::kListReference;
  apps::SeqResult a = apps::run_pip_sequential(small_pip(), flat);
  apps::SeqResult b = apps::run_pip_sequential(small_pip(), list);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_TRUE(a.mem == b.mem);
}

// Golden snapshot: PiP-1 at paper scale, 6 frames, 2 cores. These
// numbers were produced by the list-based seed implementation and must
// never drift — any change here is a semantic change to the cycle
// model, not an optimization.
TEST(SimDeterminism, GoldenCycleSnapshot) {
  const std::string spec = apps::pip_xspcl(small_pip());
  hinch::SimResult r = run_once(spec, 6, 2, sim::LruImpl::kFlat);
  EXPECT_EQ(r.total_cycles, 11388050u);
  EXPECT_EQ(r.mem.accesses, 24072u);
  EXPECT_EQ(r.mem.l1_hits, 185u);
  EXPECT_EQ(r.mem.l2_hits, 11222u);
  EXPECT_EQ(r.mem.mem_fetches, 12665u);
  EXPECT_EQ(r.mem.invalidations, 65u);
  EXPECT_EQ(r.mem.stall_cycles, 10260224u);
  EXPECT_EQ(r.jobs, 354u);

  apps::SeqResult s = apps::run_pip_sequential(small_pip());
  EXPECT_EQ(s.cycles, 17098944u);
}

TEST(SimDeterminism, ChargeTraceReplayMatches) {
  const std::string spec = apps::pip_xspcl(small_pip());
  auto prog = bench::build_program(spec);
  hinch::RunConfig run;
  run.iterations = 6;

  hinch::ChargeTrace trace;
  hinch::SimParams record;
  record.cores = 2;
  record.record_trace = &trace;
  hinch::SimResult recorded = hinch::run_on_sim(*prog, run, record);
  EXPECT_GT(trace.jobs.size(), 0u);

  for (sim::LruImpl impl :
       {sim::LruImpl::kFlat, sim::LruImpl::kListReference}) {
    hinch::SimParams replay;
    replay.cores = 2;
    replay.cache.lru_impl = impl;
    replay.replay_trace = &trace;
    hinch::SimResult replayed = hinch::run_on_sim(*prog, run, replay);
    EXPECT_EQ(replayed.total_cycles, recorded.total_cycles);
    EXPECT_TRUE(replayed.mem == recorded.mem);
    EXPECT_EQ(replayed.core_busy, recorded.core_busy);
    EXPECT_EQ(replayed.queue_wait_cycles, recorded.queue_wait_cycles);
    EXPECT_EQ(replayed.jobs, recorded.jobs);
    EXPECT_EQ(replayed.task_cycles, recorded.task_cycles);
  }
}

TEST(SimDeterminism, SeqTraceReplayMatches) {
  apps::SeqTrace trace;
  apps::SeqResult recorded =
      apps::run_pip_sequential(small_pip(), {}, &trace);
  EXPECT_GT(trace.ops.size(), 0u);
  for (sim::LruImpl impl :
       {sim::LruImpl::kFlat, sim::LruImpl::kListReference}) {
    sim::CacheConfig cache;
    cache.lru_impl = impl;
    apps::SeqReplay replayed = apps::replay_seq_trace(trace, cache);
    EXPECT_EQ(replayed.cycles, recorded.cycles);
    EXPECT_TRUE(replayed.mem == recorded.mem);
  }
}

TEST(RegionStats, BreakdownMatchesTotals) {
  sim::CacheConfig cfg;
  cfg.cores = 2;
  sim::MemorySystem mem(cfg);
  sim::RegionId a = mem.register_region(64 * 1024, "stream:0:slot0");
  sim::RegionId b = mem.register_region(32 * 1024, "scratch:task3");
  mem.access(0, a, 0, 64 * 1024, false);
  mem.access(1, a, 0, 64 * 1024, false);
  mem.access(0, b, 0, 32 * 1024, true);
  mem.release_region(b);

  std::vector<sim::RegionStats> rs = mem.region_stats();
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].label, "stream:0:slot0");
  EXPECT_EQ(rs[1].label, "scratch:task3");
  EXPECT_TRUE(rs[0].active);
  EXPECT_FALSE(rs[1].active);  // counters retained after release

  uint64_t accesses = 0, l1 = 0, l2 = 0, fetches = 0, inval = 0;
  sim::Cycles stalls = 0;
  for (const sim::RegionStats& r : rs) {
    accesses += r.accesses;
    l1 += r.l1_hits;
    l2 += r.l2_hits;
    fetches += r.mem_fetches;
    inval += r.invalidations;
    stalls += r.stall_cycles;
  }
  const sim::MemStats& total = mem.stats();
  EXPECT_EQ(accesses, total.accesses);
  EXPECT_EQ(l1, total.l1_hits);
  EXPECT_EQ(l2, total.l2_hits);
  EXPECT_EQ(fetches, total.mem_fetches);
  EXPECT_EQ(inval, total.invalidations);
  EXPECT_EQ(stalls, total.stall_cycles);
}

TEST(RegionStats, SimRunUsesDescriptiveLabels) {
  // The RegionTable registers streams/scratch with stream:<i>:slot<s>
  // and scratch:task<t> labels; spot-check via a tiny direct table.
  sim::CacheConfig cfg;
  sim::MemorySystem mem(cfg);
  hinch::RegionTable table(&mem, 4);
  table.stream_region(2, 5, 1024);
  table.scratch_region(7, 2048);
  std::vector<sim::RegionStats> rs = mem.region_stats();
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].label, "stream:2:slot1");
  EXPECT_EQ(rs[1].label, "scratch:task7");
}

// The parallel sweep driver must return the same results regardless of
// worker count. This is also the designated TSan workload for
// concurrent simulator instances.
TEST(ParallelSweep, DeterministicAcrossWorkerCounts) {
  const std::string spec = apps::pip_xspcl(small_pip());
  auto sweep = [&] {
    return bench::parallel_sweep(6, [&](int idx) -> uint64_t {
      int cores = idx % 3 + 1;
      sim::LruImpl impl =
          idx < 3 ? sim::LruImpl::kFlat : sim::LruImpl::kListReference;
      return run_once(spec, 4, cores, impl).total_cycles;
    });
  };
  setenv("XSPCL_SWEEP_THREADS", "1", 1);
  std::vector<uint64_t> serial = sweep();
  setenv("XSPCL_SWEEP_THREADS", "4", 1);
  std::vector<uint64_t> threaded = sweep();
  unsetenv("XSPCL_SWEEP_THREADS");
  EXPECT_EQ(serial, threaded);
  // flat (points 0-2) and list (points 3-5) agree per core count.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(serial[i], serial[i + 3]);
}

}  // namespace
