#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "sp/graph.hpp"

namespace {

using hinch::Component;
using hinch::ComponentConfig;
using hinch::ComponentRegistry;
using hinch::ExecContext;
using hinch::Packet;
using hinch::Program;
using hinch::RunConfig;
using hinch::SimParams;
using hinch::SimResult;
using sp::NodePtr;
using sp::ParShape;

// Shared per-instance probe state, keyed by instance name.
struct ProbeState {
  int runs = 0;
  int64_t last_iteration = -1;
  int slice_index = 0;
  int slice_count = 1;
  std::string last_reconfig;
  std::vector<int64_t> seen_values;  // consumer: payloads per iteration
};

class ProbeBoard {
 public:
  static ProbeBoard& get() {
    static ProbeBoard board;
    return board;
  }
  ProbeState& state(const std::string& instance) {
    std::lock_guard<std::mutex> lock(mutex_);
    return states_[instance];
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    states_.clear();
  }

 private:
  std::mutex mutex_;
  std::map<std::string, ProbeState> states_;
};

// Emits the iteration number as payload; charges `cost` cycles.
class Producer : public Component {
 public:
  static support::Result<std::unique_ptr<Component>> create(
      const ComponentConfig& config) {
    auto c = std::make_unique<Producer>();
    c->cost_ = hinch::param_int_or(config.params, "cost", 100);
    return support::Result<std::unique_ptr<Component>>(std::move(c));
  }
  Producer() : out_(declare_output("out")) {}

  void run(ExecContext& ctx) override {
    ctx.charge_compute(static_cast<uint64_t>(cost_));
    ctx.write(out_, Packet::of(std::make_shared<int64_t>(ctx.iteration()),
                               sizeof(int64_t)));
    ProbeState& s = ProbeBoard::get().state(instance());
    ++s.runs;
    s.last_iteration = ctx.iteration();
  }

 private:
  int out_;
  int64_t cost_;
};

// Passes its input through, adding `add` to the payload.
class Worker : public Component {
 public:
  static support::Result<std::unique_ptr<Component>> create(
      const ComponentConfig& config) {
    auto c = std::make_unique<Worker>();
    c->cost_ = hinch::param_int_or(config.params, "cost", 100);
    c->add_ = hinch::param_int_or(config.params, "add", 0);
    return support::Result<std::unique_ptr<Component>>(std::move(c));
  }
  Worker() : in_(declare_input("in")), out_(declare_output("out")) {}

  void run(ExecContext& ctx) override {
    ctx.charge_compute(static_cast<uint64_t>(cost_));
    auto v = ctx.read(in_).get<int64_t>();
    ctx.write(out_, Packet::of(std::make_shared<int64_t>(*v + add_),
                               sizeof(int64_t)));
    ProbeState& s = ProbeBoard::get().state(instance());
    ++s.runs;
    s.slice_index = slice_index();
    s.slice_count = slice_count();
  }

  void reconfigure(std::string_view request) override {
    ProbeBoard::get().state(instance()).last_reconfig = std::string(request);
  }

 private:
  int in_;
  int out_;
  int64_t cost_;
  int64_t add_;
};

// Records the payload of every iteration.
class Consumer : public Component {
 public:
  static support::Result<std::unique_ptr<Component>> create(
      const ComponentConfig& config) {
    auto c = std::make_unique<Consumer>();
    c->cost_ = hinch::param_int_or(config.params, "cost", 50);
    return support::Result<std::unique_ptr<Component>>(std::move(c));
  }
  Consumer() : in_(declare_input("in")) {}

  void run(ExecContext& ctx) override {
    ctx.charge_compute(static_cast<uint64_t>(cost_));
    auto v = ctx.read(in_).get<int64_t>();
    ProbeState& s = ProbeBoard::get().state(instance());
    ++s.runs;
    s.seen_values.push_back(*v);
  }

 private:
  int in_;
  int64_t cost_ = 50;
};

ComponentRegistry make_registry() {
  ComponentRegistry reg;
  components::register_standard(reg);
  reg.register_class("probe_producer", &Producer::create);
  reg.register_class("probe_worker", &Worker::create);
  reg.register_class("probe_consumer", &Consumer::create);
  return reg;
}

sp::LeafSpec leaf(const std::string& instance, const std::string& klass,
                  std::vector<sp::PortBinding> ins,
                  std::vector<sp::PortBinding> outs,
                  std::vector<sp::Param> params = {}) {
  sp::LeafSpec spec;
  spec.instance = instance;
  spec.klass = klass;
  spec.inputs = std::move(ins);
  spec.outputs = std::move(outs);
  spec.params = std::move(params);
  return spec;
}

// producer -> worker -> consumer; `balanced_cost`, when nonzero, gives
// all three stages the same cost (the pipelining tests need a graph
// whose sequential time is ~3x its steady-state pipelined interval).
NodePtr chain_graph(int64_t worker_cost = 100, int64_t balanced_cost = 0) {
  int64_t prod = balanced_cost ? balanced_cost : 100;
  int64_t work = balanced_cost ? balanced_cost : worker_cost;
  int64_t cons = balanced_cost ? balanced_cost : 50;
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(
      leaf("prod", "probe_producer", {}, {{"out", "a"}},
           {{"cost", std::to_string(prod)}})));
  steps.push_back(sp::make_leaf(
      leaf("work", "probe_worker", {{"in", "a"}}, {{"out", "b"}},
           {{"cost", std::to_string(work)}, {"add", "0"}})));
  steps.push_back(sp::make_leaf(
      leaf("cons", "probe_consumer", {{"in", "b"}}, {},
           {{"cost", std::to_string(cons)}})));
  return sp::make_seq(std::move(steps));
}

class HinchTest : public ::testing::Test {
 protected:
  void SetUp() override { ProbeBoard::get().clear(); }
  ComponentRegistry registry_ = make_registry();
};

// --- Program::build ------------------------------------------------------------

TEST_F(HinchTest, BuildRejectsUnknownClass) {
  NodePtr g = sp::make_leaf(leaf("x", "no_such_class", {}, {}));
  auto prog = Program::build(*g, registry_);
  EXPECT_FALSE(prog.is_ok());
  EXPECT_EQ(prog.status().code(), support::Code::kNotFound);
}

TEST_F(HinchTest, BuildRejectsUnknownPort) {
  NodePtr g = sp::make_leaf(
      leaf("x", "probe_producer", {}, {{"wrong_port", "s"}}));
  auto prog = Program::build(*g, registry_);
  EXPECT_FALSE(prog.is_ok());
  EXPECT_NE(prog.status().message().find("wrong_port"), std::string::npos);
}

TEST_F(HinchTest, BuildRejectsUnboundPort) {
  NodePtr g = sp::make_leaf(leaf("x", "probe_producer", {}, {}));
  auto prog = Program::build(*g, registry_);
  EXPECT_FALSE(prog.is_ok());
  EXPECT_EQ(prog.status().code(), support::Code::kFailedPrecondition);
}

TEST_F(HinchTest, BuildRejectsDuplicateParam) {
  sp::LeafSpec spec = leaf("x", "probe_producer", {}, {{"out", "s"}});
  spec.params = {{"cost", "1"}, {"cost", "2"}};
  NodePtr g = sp::make_leaf(std::move(spec));
  auto prog = Program::build(*g, registry_);
  EXPECT_EQ(prog.status().code(), support::Code::kAlreadyExists);
}

TEST_F(HinchTest, BuildChainStructure) {
  NodePtr g = chain_graph();
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  EXPECT_EQ(prog.value()->tasks().size(), 3u);
  EXPECT_EQ(prog.value()->component_count(), 3);
  EXPECT_EQ(prog.value()->entry_tasks().size(), 1u);
  EXPECT_NE(prog.value()->find_stream("a"), nullptr);
  EXPECT_EQ(prog.value()->find_stream("zzz"), nullptr);
}

// --- execution ------------------------------------------------------------------

TEST_F(HinchTest, ChainRunsAllIterationsInOrder) {
  NodePtr g = chain_graph();
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok());
  RunConfig run;
  run.iterations = 12;
  SimResult r = hinch::run_on_sim(*prog.value(), run, SimParams{});
  EXPECT_GT(r.total_cycles, 0u);
  ProbeState& cons = ProbeBoard::get().state("cons");
  ASSERT_EQ(cons.runs, 12);
  for (int64_t i = 0; i < 12; ++i) EXPECT_EQ(cons.seen_values[i], i);
}

TEST_F(HinchTest, SimIsDeterministic) {
  NodePtr g = chain_graph();
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok());
  RunConfig run;
  run.iterations = 20;
  SimParams sim;
  sim.cores = 3;
  SimResult a = hinch::run_on_sim(*prog.value(), run, sim);
  ProbeBoard::get().clear();
  SimResult b = hinch::run_on_sim(*prog.value(), run, sim);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.mem.stall_cycles, b.mem.stall_cycles);
}

TEST_F(HinchTest, PipeliningOverlapsIterations) {
  // With 3 stages of equal cost and >= 3 cores, pipelining should push
  // throughput toward one stage-cost per iteration rather than three.
  NodePtr g = chain_graph(0, 1000);
  auto prog = Program::build(*g, registry_,
                             hinch::BuildConfig{.stream_depth = 5});
  ASSERT_TRUE(prog.is_ok());
  RunConfig run;
  run.iterations = 50;
  SimParams one;
  one.cores = 1;
  one.sync_costs = false;
  SimParams three;
  three.cores = 3;
  three.sync_costs = false;
  uint64_t t1 = hinch::run_on_sim(*prog.value(), run, one).total_cycles;
  ProbeBoard::get().clear();
  uint64_t t3 = hinch::run_on_sim(*prog.value(), run, three).total_cycles;
  EXPECT_LT(t3, t1);
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t3), 2.2);
}

TEST_F(HinchTest, WindowOneDisablesPipelining) {
  NodePtr g = chain_graph(0, 1000);
  auto prog = Program::build(*g, registry_,
                             hinch::BuildConfig{.stream_depth = 5});
  ASSERT_TRUE(prog.is_ok());
  RunConfig narrow;
  narrow.iterations = 20;
  narrow.window = 1;
  RunConfig wide;
  wide.iterations = 20;
  wide.window = 5;
  SimParams sim;
  sim.cores = 3;
  uint64_t t_narrow =
      hinch::run_on_sim(*prog.value(), narrow, sim).total_cycles;
  ProbeBoard::get().clear();
  uint64_t t_wide = hinch::run_on_sim(*prog.value(), wide, sim).total_cycles;
  EXPECT_LT(t_wide, t_narrow);
}

TEST_F(HinchTest, WindowClampedToStreamDepth) {
  NodePtr g = chain_graph();
  auto prog = Program::build(*g, registry_,
                             hinch::BuildConfig{.stream_depth = 2});
  ASSERT_TRUE(prog.is_ok());
  RunConfig run;
  run.iterations = 10;
  run.window = 50;  // would corrupt stream slots if not clamped
  SimResult r = hinch::run_on_sim(*prog.value(), run, SimParams{});
  ProbeState& cons = ProbeBoard::get().state("cons");
  EXPECT_EQ(cons.runs, 10);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(cons.seen_values[i], i);
  EXPECT_GT(r.total_cycles, 0u);
}

TEST_F(HinchTest, ZeroIterationsFinishImmediately) {
  NodePtr g = chain_graph();
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok());
  RunConfig run;
  run.iterations = 0;
  SimResult r = hinch::run_on_sim(*prog.value(), run, SimParams{});
  EXPECT_EQ(r.total_cycles, 0u);
  EXPECT_EQ(r.jobs, 0u);
}

TEST_F(HinchTest, TaskParallelChainsOverlap) {
  // Two independent chains; 2 cores should nearly halve the makespan.
  std::vector<NodePtr> blocks;
  for (int i = 0; i < 2; ++i) {
    std::vector<NodePtr> steps;
    std::string suffix = std::to_string(i);
    steps.push_back(sp::make_leaf(leaf("prod" + suffix, "probe_producer", {},
                                       {{"out", "a" + suffix}},
                                       {{"cost", "2000"}})));
    steps.push_back(sp::make_leaf(leaf("cons" + suffix, "probe_consumer",
                                       {{"in", "a" + suffix}}, {})));
    blocks.push_back(sp::make_seq(std::move(steps)));
  }
  NodePtr g = sp::make_par(ParShape::kTask, 1, std::move(blocks));
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok());
  RunConfig run;
  run.iterations = 10;
  run.window = 1;  // isolate task parallelism from pipelining
  SimParams one;
  one.cores = 1;
  one.sync_costs = false;
  SimParams two;
  two.cores = 2;
  two.sync_costs = false;
  uint64_t t1 = hinch::run_on_sim(*prog.value(), run, one).total_cycles;
  ProbeBoard::get().clear();
  uint64_t t2 = hinch::run_on_sim(*prog.value(), run, two).total_cycles;
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t2), 1.7);
}

// --- slices ---------------------------------------------------------------------

TEST_F(HinchTest, SliceCreatesCopiesWithPositions) {
  std::vector<NodePtr> block;
  block.push_back(sp::make_leaf(
      leaf("work", "probe_worker", {{"in", "a"}}, {{"out", "b"}})));
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("prod", "probe_producer", {},
                                     {{"out", "a"}})));
  std::vector<NodePtr> one;
  one.push_back(sp::make_seq(std::move(block)));
  steps.push_back(sp::make_par(ParShape::kSlice, 4, std::move(one)));
  steps.push_back(sp::make_leaf(leaf("cons", "probe_consumer",
                                     {{"in", "b"}}, {})));
  NodePtr g = sp::make_seq(std::move(steps));
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  // prod + 4 worker copies + cons.
  EXPECT_EQ(prog.value()->component_count(), 6);

  RunConfig run;
  run.iterations = 6;
  hinch::run_on_sim(*prog.value(), run, SimParams{});
  for (int i = 0; i < 4; ++i) {
    ProbeState& s = ProbeBoard::get().state("work#" + std::to_string(i));
    EXPECT_EQ(s.runs, 6);
    EXPECT_EQ(s.slice_index, i);
    EXPECT_EQ(s.slice_count, 4);
    // Slice assignment is delivered through the reconfiguration
    // interface (§3.1/§3.3).
    EXPECT_EQ(s.last_reconfig,
              "slice=" + std::to_string(i) + "/4");
  }
}

// --- crossdep --------------------------------------------------------------------

TEST_F(HinchTest, CrossdepWiresNeighbourDependencies) {
  std::vector<NodePtr> blocks;
  blocks.push_back(sp::make_leaf(
      leaf("h", "probe_worker", {{"in", "a"}}, {{"out", "t"}})));
  blocks.push_back(sp::make_leaf(
      leaf("v", "probe_worker", {{"in", "t"}}, {{"out", "b"}})));
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("prod", "probe_producer", {},
                                     {{"out", "a"}})));
  steps.push_back(sp::make_par(ParShape::kCrossDep, 4, std::move(blocks)));
  steps.push_back(sp::make_leaf(leaf("cons", "probe_consumer",
                                     {{"in", "b"}}, {})));
  NodePtr g = sp::make_seq(std::move(steps));
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();

  // Find the task of v-copy 1 (depends on h copies 0, 1, 2) and v-copy 0
  // (depends on h copies 0, 1 only, plus nothing else).
  std::map<std::string, const hinch::Task*> by_label;
  for (const hinch::Task& t : prog.value()->tasks())
    by_label[t.label] = &t;
  ASSERT_TRUE(by_label.count("v#1.1"));
  EXPECT_EQ(by_label["v#1.1"]->preds.size(), 3u);
  ASSERT_TRUE(by_label.count("v#1.0"));
  EXPECT_EQ(by_label["v#1.0"]->preds.size(), 2u);
  ASSERT_TRUE(by_label.count("v#1.3"));
  EXPECT_EQ(by_label["v#1.3"]->preds.size(), 2u);
  // h copies depend only on the producer.
  ASSERT_TRUE(by_label.count("h#0.2"));
  EXPECT_EQ(by_label["h#0.2"]->preds.size(), 1u);

  RunConfig run;
  run.iterations = 5;
  hinch::run_on_sim(*prog.value(), run, SimParams{});
  EXPECT_EQ(ProbeBoard::get().state("cons").runs, 5);
}

// --- groups (§4.1 fusion extension) ----------------------------------------------

TEST_F(HinchTest, GroupRunsComponentsInOneJob) {
  // producer -> group(worker1 -> worker2) -> consumer: 4 components but
  // only 3 tasks, and the group's two workers run back to back.
  std::vector<NodePtr> grouped;
  grouped.push_back(sp::make_leaf(
      leaf("w1", "probe_worker", {{"in", "a"}}, {{"out", "b"}},
           {{"add", "10"}})));
  grouped.push_back(sp::make_leaf(
      leaf("w2", "probe_worker", {{"in", "b"}}, {{"out", "c"}},
           {{"add", "100"}})));
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("prod", "probe_producer", {},
                                     {{"out", "a"}})));
  steps.push_back(sp::make_group(std::move(grouped)));
  steps.push_back(sp::make_leaf(leaf("cons", "probe_consumer",
                                     {{"in", "c"}}, {})));
  NodePtr g = sp::make_seq(std::move(steps));
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  EXPECT_EQ(prog.value()->component_count(), 4);
  EXPECT_EQ(prog.value()->tasks().size(), 3u);

  RunConfig run;
  run.iterations = 8;
  SimResult r = hinch::run_on_sim(*prog.value(), run, SimParams{});
  EXPECT_EQ(r.jobs, 24u);  // 3 tasks x 8 iterations
  ProbeState& cons = ProbeBoard::get().state("cons");
  ASSERT_EQ(cons.runs, 8);
  for (int64_t i = 0; i < 8; ++i)
    EXPECT_EQ(cons.seen_values[i], i + 110);  // both workers applied
}

TEST_F(HinchTest, GroupInsideSliceReplicates) {
  std::vector<NodePtr> grouped;
  grouped.push_back(sp::make_leaf(
      leaf("w1", "probe_worker", {{"in", "a"}}, {{"out", "b"}})));
  grouped.push_back(sp::make_leaf(
      leaf("w2", "probe_worker", {{"in", "b"}}, {{"out", "c"}})));
  std::vector<NodePtr> one;
  one.push_back(sp::make_group(std::move(grouped)));
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("prod", "probe_producer", {},
                                     {{"out", "a"}})));
  steps.push_back(sp::make_par(ParShape::kSlice, 3, std::move(one)));
  steps.push_back(sp::make_leaf(leaf("cons", "probe_consumer",
                                     {{"in", "c"}}, {})));
  NodePtr g = sp::make_seq(std::move(steps));
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  // prod + 3 x (w1, w2) + cons components; prod + 3 group tasks + cons.
  EXPECT_EQ(prog.value()->component_count(), 8);
  EXPECT_EQ(prog.value()->tasks().size(), 5u);
  RunConfig run;
  run.iterations = 4;
  hinch::run_on_sim(*prog.value(), run, SimParams{});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ProbeBoard::get().state("w1#" + std::to_string(i)).runs, 4);
    EXPECT_EQ(ProbeBoard::get().state("w2#" + std::to_string(i)).runs, 4);
  }
}

// --- thread executor ---------------------------------------------------------------

class ThreadWorkerCountTest : public HinchTest,
                              public ::testing::WithParamInterface<int> {};

TEST_P(ThreadWorkerCountTest, ProducesSameResults) {
  NodePtr g = chain_graph();
  auto prog = Program::build(*g, registry_);
  ASSERT_TRUE(prog.is_ok());
  RunConfig run;
  run.iterations = 25;
  hinch::ThreadResult r =
      hinch::run_on_threads(*prog.value(), run, GetParam());
  EXPECT_EQ(r.jobs, 75u);
  ProbeState& cons = ProbeBoard::get().state("cons");
  ASSERT_EQ(cons.runs, 25);
  for (int64_t i = 0; i < 25; ++i) EXPECT_EQ(cons.seen_values[i], i);
}

INSTANTIATE_TEST_SUITE_P(Workers, ThreadWorkerCountTest,
                         ::testing::Values(1, 2, 4, 8));

// --- events ----------------------------------------------------------------------

TEST_F(HinchTest, EventQueuesDeliverInOrder) {
  hinch::EventQueue q("test");
  EXPECT_TRUE(q.empty());
  q.push({"a", "1"});
  q.push({"b", "2"});
  EXPECT_EQ(q.size(), 2u);
  auto e1 = q.poll();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->name, "a");
  auto e2 = q.poll();
  EXPECT_EQ(e2->payload, "2");
  EXPECT_FALSE(q.poll().has_value());
}

TEST_F(HinchTest, QueueRegistryCreatesOnDemand) {
  hinch::EventQueueRegistry reg;
  EXPECT_EQ(reg.find("x"), nullptr);
  hinch::EventQueue& q = reg.get_or_create("x");
  EXPECT_EQ(reg.find("x"), &q);
  EXPECT_EQ(&reg.get_or_create("x"), &q);
  EXPECT_EQ(reg.names().size(), 1u);
}

TEST_F(HinchTest, SlicedRowPartitionCoversExactly) {
  for (int rows : {1, 7, 45, 288}) {
    for (int slices : {1, 2, 8, 9, 45}) {
      int covered = 0;
      int prev_end = 0;
      for (int s = 0; s < slices; ++s) {
        int r0 = 0, r1 = 0;
        hinch::slice_rows(rows, s, slices, &r0, &r1);
        EXPECT_EQ(r0, prev_end);
        EXPECT_GE(r1, r0);
        covered += r1 - r0;
        prev_end = r1;
      }
      EXPECT_EQ(covered, rows) << rows << "/" << slices;
    }
  }
}

}  // namespace
