// Unit tests of the standard component library, each through a minimal
// program on the simulator: construction-parameter validation, looping
// sources, plane modes, reconfiguration requests, sink retention.
#include <gtest/gtest.h>

#include "components/clip_cache.hpp"
#include "components/components.hpp"
#include "components/sinks.hpp"
#include "hinch/runtime.hpp"
#include "media/jpeg.hpp"
#include "media/kernels.hpp"
#include "media/metrics.hpp"
#include "media/mjpeg.hpp"
#include "media/synth.hpp"
#include "xspcl/loader.hpp"

namespace {

std::unique_ptr<hinch::Program> build(const std::string& spec) {
  components::register_standard_globally();
  auto prog =
      xspcl::build_program(spec, hinch::ComponentRegistry::global());
  EXPECT_TRUE(prog.is_ok()) << prog.status().to_string();
  return prog.is_ok() ? std::move(prog).take() : nullptr;
}

const components::SinkAccess* find_sink(hinch::Program& prog) {
  for (int i = 0; i < prog.component_count(); ++i) {
    auto* s =
        dynamic_cast<const components::SinkAccess*>(&prog.component(i));
    if (s) return s;
  }
  return nullptr;
}

void run(hinch::Program& prog, int64_t iterations, int cores = 1) {
  hinch::RunConfig config;
  config.iterations = iterations;
  hinch::SimParams sim;
  sim.cores = cores;
  hinch::run_on_sim(prog, config, sim);
}

// Build errors surface as Status, not crashes.
struct BadComponent {
  const char* name;
  const char* spec;
};

class ComponentCreateErrorTest
    : public ::testing::TestWithParam<BadComponent> {};

TEST_P(ComponentCreateErrorTest, RejectedAtBuildTime) {
  components::register_standard_globally();
  auto prog = xspcl::build_program(GetParam().spec,
                                   hinch::ComponentRegistry::global());
  EXPECT_FALSE(prog.is_ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ComponentCreateErrorTest,
    ::testing::Values(
        BadComponent{"tiny_source",
                     R"(<xspcl><procedure name="main"><body>
          <component name="s" class="video_source">
            <param name="width" value="4"/>
            <outport name="out" stream="v"/>
          </component></body></procedure></xspcl>)"},
        BadComponent{"bad_source_kind",
                     R"(<xspcl><procedure name="main"><body>
          <component name="s" class="video_source">
            <param name="source" value="webcam"/>
            <outport name="out" stream="v"/>
          </component></body></procedure></xspcl>)"},
        BadComponent{"downscale_no_factor",
                     R"(<xspcl><procedure name="main"><body>
          <component name="d" class="downscale">
            <inport name="in" stream="v"/>
            <outport name="out" stream="w"/>
          </component></body></procedure></xspcl>)"},
        BadComponent{"downscale_bad_factor",
                     R"(<xspcl><procedure name="main"><body>
          <component name="d" class="downscale">
            <param name="factor" value="0"/>
            <inport name="in" stream="v"/>
            <outport name="out" stream="w"/>
          </component></body></procedure></xspcl>)"},
        BadComponent{"blend_bad_alpha",
                     R"(<xspcl><procedure name="main"><body>
          <component name="b" class="blend">
            <param name="alpha" value="999"/>
            <inport name="fg" stream="v"/>
            <outport name="canvas" stream="w"/>
          </component></body></procedure></xspcl>)"},
        BadComponent{"blur_bad_kernel",
                     R"(<xspcl><procedure name="main"><body>
          <component name="b" class="blur_h">
            <param name="kernel" value="7"/>
            <inport name="in" stream="v"/>
            <outport name="out" stream="w"/>
          </component></body></procedure></xspcl>)"},
        BadComponent{"idct_bad_plane",
                     R"(<xspcl><procedure name="main"><body>
          <component name="i" class="idct">
            <param name="plane" value="5"/>
            <inport name="coeffs" stream="v"/>
            <outport name="out" stream="w"/>
          </component></body></procedure></xspcl>)"},
        BadComponent{"ticker_without_event",
                     R"(<xspcl><procedure name="main"><body>
          <component name="t" class="event_ticker">
            <param name="queue" value="q"/>
          </component></body></procedure></xspcl>)"},
        BadComponent{"ticker_bad_period",
                     R"(<xspcl><procedure name="main"><body>
          <component name="t" class="event_ticker">
            <param name="event" value="e"/>
            <param name="queue" value="q"/>
            <param name="period" value="0"/>
          </component></body></procedure></xspcl>)"},
        BadComponent{"script_bad_entry",
                     R"(<xspcl><procedure name="main"><body>
          <component name="t" class="event_script">
            <param name="queue" value="q"/>
            <param name="script" value="nonsense"/>
          </component></body></procedure></xspcl>)"}),
    [](const ::testing::TestParamInfo<BadComponent>& info) {
      return info.param.name;
    });

TEST(VideoSource, LoopsOverClipFrames) {
  auto prog = build(R"(<xspcl><procedure name="main"><body>
    <component name="s" class="video_source">
      <param name="seed" value="9"/>
      <param name="width" value="32"/>
      <param name="height" value="24"/>
      <param name="frames" value="3"/>
      <outport name="out" stream="v"/>
    </component>
    <component name="k" class="frame_sink">
      <param name="store" value="1"/>
      <inport name="in" stream="v"/>
    </component>
  </body></procedure></xspcl>)");
  ASSERT_TRUE(prog);
  run(*prog, 7);
  const components::SinkAccess* sink = find_sink(*prog);
  ASSERT_TRUE(sink);
  ASSERT_EQ(sink->sink().frames(), 7);
  // Frame 3 repeats frame 0, frame 4 repeats frame 1, etc.
  EXPECT_TRUE(sink->sink().frame(3)->equals(*sink->sink().frame(0)));
  EXPECT_TRUE(sink->sink().frame(4)->equals(*sink->sink().frame(1)));
  EXPECT_FALSE(sink->sink().frame(1)->equals(*sink->sink().frame(0)));
}

TEST(VideoSource, FileSourceRoundTrips) {
  media::SynthSpec spec{.seed = 77, .width = 48, .height = 32};
  media::RawVideo clip = media::RawVideo::synthesize(spec, 4);
  std::string path = ::testing::TempDir() + "/src.rawv";
  ASSERT_TRUE(clip.save(path).is_ok());

  auto prog = build(std::string(R"(<xspcl><procedure name="main"><body>
    <component name="s" class="video_source">
      <param name="source" value="file"/>
      <param name="path" value=")") + path + R"("/>
      <outport name="out" stream="v"/>
    </component>
    <component name="k" class="frame_sink">
      <param name="store" value="1"/>
      <inport name="in" stream="v"/>
    </component>
  </body></procedure></xspcl>)");
  ASSERT_TRUE(prog);
  run(*prog, 4);
  const components::SinkAccess* sink = find_sink(*prog);
  ASSERT_TRUE(sink);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(sink->sink().frame(i)->equals(*clip.frame(i))) << i;
}

TEST(MjpegSource, FileSourceDecodesViaPipeline) {
  media::SynthSpec spec{.seed = 78, .width = 64, .height = 48};
  media::RawVideo clip = media::RawVideo::synthesize(spec, 2);
  auto encoded = media::MjpegClip::encode(clip, 85);
  ASSERT_TRUE(encoded.is_ok());
  std::string path = ::testing::TempDir() + "/src.mjpg";
  ASSERT_TRUE(encoded.value().save(path).is_ok());

  auto prog = build(std::string(R"(<xspcl><procedure name="main"><body>
    <component name="s" class="mjpeg_source">
      <param name="source" value="file"/>
      <param name="path" value=")") + path + R"("/>
      <outport name="out" stream="j"/>
    </component>
    <component name="d" class="jpeg_decode">
      <inport name="jpeg" stream="j"/>
      <outport name="coeffs" stream="c"/>
    </component>
    <component name="iy" class="idct">
      <param name="plane" value="0"/>
      <inport name="coeffs" stream="c"/>
      <outport name="out" stream="y"/>
    </component>
    <component name="k" class="frame_sink">
      <param name="store" value="1"/>
      <inport name="in" stream="y"/>
    </component>
  </body></procedure></xspcl>)");
  ASSERT_TRUE(prog);
  run(*prog, 2);
  const components::SinkAccess* sink = find_sink(*prog);
  ASSERT_TRUE(sink);
  // The decoded luma must be close to the original.
  media::FramePtr y = sink->sink().frame(0);
  ASSERT_EQ(y->format(), media::PixelFormat::kGray);
  media::FramePtr orig_y =
      media::make_frame(media::PixelFormat::kGray, 64, 48);
  media::copy_plane(clip.frame(0)->plane(0), orig_y->plane(0), 0, 48);
  EXPECT_GT(media::psnr(*orig_y, *y), 30.0);
}

TEST(Downscale, PlaneModeProducesGray) {
  auto prog = build(R"(<xspcl><procedure name="main"><body>
    <component name="s" class="video_source">
      <param name="width" value="64"/><param name="height" value="48"/>
      <outport name="out" stream="v"/>
    </component>
    <component name="d" class="downscale">
      <param name="factor" value="4"/>
      <param name="plane" value="1"/>
      <inport name="in" stream="v"/>
      <outport name="out" stream="w"/>
    </component>
    <component name="k" class="frame_sink">
      <param name="store" value="1"/>
      <inport name="in" stream="w"/>
    </component>
  </body></procedure></xspcl>)");
  ASSERT_TRUE(prog);
  run(*prog, 1);
  const components::SinkAccess* sink = find_sink(*prog);
  ASSERT_TRUE(sink);
  media::FramePtr out = sink->sink().frame(0);
  EXPECT_EQ(out->format(), media::PixelFormat::kGray);
  EXPECT_EQ(out->width(), 8);   // U plane is 32x24, /4
  EXPECT_EQ(out->height(), 6);
}

TEST(Blend, ReconfigurePosMovesOverlay) {
  // Initial reconfiguration request (§3.1) places the overlay; the run
  // must reflect the new position, not the x/y params.
  auto prog = build(R"(<xspcl><procedure name="main"><body>
    <component name="bg" class="video_source">
      <param name="width" value="64"/><param name="height" value="48"/>
      <outport name="out" stream="b"/>
    </component>
    <component name="fg" class="video_source">
      <param name="seed" value="5"/>
      <param name="width" value="16"/><param name="height" value="16"/>
      <outport name="out" stream="f"/>
    </component>
    <component name="c" class="copy">
      <inport name="in" stream="b"/>
      <outport name="out" stream="canvas"/>
    </component>
    <component name="bl" class="blend">
      <param name="x" value="0"/>
      <param name="y" value="0"/>
      <param name="plane" value="0"/>
      <inport name="fg" stream="f"/>
      <outport name="canvas" stream="canvas"/>
      <reconfig request="pos=40,24"/>
    </component>
    <component name="k" class="frame_sink">
      <param name="store" value="1"/>
      <inport name="in" stream="canvas"/>
    </component>
  </body></procedure></xspcl>)");
  ASSERT_TRUE(prog);
  run(*prog, 1);
  const components::SinkAccess* sink = find_sink(*prog);
  ASSERT_TRUE(sink);
  media::FramePtr out = sink->sink().frame(0);

  // Rebuild the expectation by hand.
  media::SynthSpec bg_spec{.seed = 1, .width = 64, .height = 48};
  media::SynthSpec fg_spec{.seed = 5, .width = 16, .height = 16};
  media::FramePtr expect = media::make_synth_frame(bg_spec, 0)->clone();
  media::FramePtr fg = media::make_synth_frame(fg_spec, 0);
  media::blend(fg->plane(0), expect->plane(0), 40, 24, 256, 0, 48);
  EXPECT_TRUE(out->equals(*expect));
}

TEST(EventTicker, FiresAtExactPeriods) {
  auto prog = build(R"(<xspcl><procedure name="main"><body>
    <component name="t" class="event_ticker">
      <param name="event" value="tick"/>
      <param name="queue" value="q"/>
      <param name="period" value="4"/>
    </component>
  </body></procedure></xspcl>)");
  ASSERT_TRUE(prog);
  run(*prog, 13);
  // Nobody consumed the events; count them: iterations 4, 8, 12.
  hinch::EventQueue* q = prog->queues().find("q");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->size(), 3u);
}

TEST(Sinks, StoreOffKeepsOnlyChecksum) {
  auto prog = build(R"(<xspcl><procedure name="main"><body>
    <component name="s" class="video_source">
      <param name="width" value="32"/><param name="height" value="24"/>
      <outport name="out" stream="v"/>
    </component>
    <component name="k" class="frame_sink">
      <inport name="in" stream="v"/>
    </component>
  </body></procedure></xspcl>)");
  ASSERT_TRUE(prog);
  run(*prog, 5);
  const components::SinkAccess* sink = find_sink(*prog);
  ASSERT_TRUE(sink);
  EXPECT_EQ(sink->sink().frames(), 5);
  EXPECT_NE(sink->sink().checksum(), media::kFnvBasis);
}

TEST(Sinks, ResetBetweenRunsClearsState) {
  auto prog = build(R"(<xspcl><procedure name="main"><body>
    <component name="s" class="video_source">
      <param name="width" value="32"/><param name="height" value="24"/>
      <outport name="out" stream="v"/>
    </component>
    <component name="k" class="frame_sink">
      <inport name="in" stream="v"/>
    </component>
  </body></procedure></xspcl>)");
  ASSERT_TRUE(prog);
  run(*prog, 5);
  uint64_t first = find_sink(*prog)->sink().checksum();
  run(*prog, 5);
  EXPECT_EQ(find_sink(*prog)->sink().checksum(), first);
  EXPECT_EQ(find_sink(*prog)->sink().frames(), 5);
}

TEST(SceneChange, FiresOnContentJumpsOnly) {
  // threshold=0 -> every frame pair differs in a moving synthetic clip,
  // so events fire from iteration 1 onward; a huge threshold never fires.
  for (auto [threshold, expected] : {std::pair<int, size_t>{0, 9},
                                     std::pair<int, size_t>{100000, 0}}) {
    auto prog = build(std::string(R"(<xspcl><procedure name="main"><body>
      <component name="s" class="video_source">
        <param name="width" value="48"/><param name="height" value="32"/>
        <outport name="out" stream="v"/>
      </component>
      <component name="d" class="scene_change">
        <param name="queue" value="q"/>
        <param name="event" value="cut"/>
        <param name="threshold" value=")") + std::to_string(threshold) +
                      R"("/>
        <inport name="in" stream="v"/>
        <outport name="out" stream="w"/>
      </component>
      <component name="k" class="frame_sink">
        <inport name="in" stream="w"/>
      </component>
    </body></procedure></xspcl>)");
    ASSERT_TRUE(prog);
    run(*prog, 10);
    // The queue is created lazily on the first send; absent == 0 events.
    hinch::EventQueue* q = prog->queues().find("q");
    size_t events = q ? q->size() : 0;
    EXPECT_EQ(events, expected) << "threshold=" << threshold;
    // Pass-through is intact.
    EXPECT_EQ(find_sink(*prog)->sink().frames(), 10);
  }
}

TEST(Transcode, EncodeSinkRoundTrips) {
  auto prog = build(R"(<xspcl><procedure name="main"><body>
    <component name="s" class="video_source">
      <param name="seed" value="44"/>
      <param name="width" value="64"/><param name="height" value="48"/>
      <param name="frames" value="3"/>
      <outport name="out" stream="v"/>
    </component>
    <component name="e" class="jpeg_encode">
      <param name="quality" value="90"/>
      <param name="restart" value="4"/>
      <inport name="in" stream="v"/>
      <outport name="jpeg" stream="j"/>
    </component>
    <component name="k" class="mjpeg_sink">
      <inport name="in" stream="j"/>
    </component>
  </body></procedure></xspcl>)");
  ASSERT_TRUE(prog);
  run(*prog, 3, 2);
  const components::MjpegSinkAccess* sink = nullptr;
  for (int i = 0; i < prog->component_count(); ++i) {
    auto* s = dynamic_cast<const components::MjpegSinkAccess*>(
        &prog->component(i));
    if (s) sink = s;
  }
  ASSERT_TRUE(sink);
  media::MjpegClip clip = sink->clip();
  ASSERT_EQ(clip.frame_count(), 3);
  // Each compressed frame decodes back near the source content.
  media::SynthSpec spec{.seed = 44, .width = 64, .height = 48};
  for (int i = 0; i < 3; ++i) {
    auto decoded = media::jpeg::decode(clip.frame(i).data(),
                                       clip.frame(i).size());
    ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
    media::FramePtr original = media::make_synth_frame(spec, i);
    EXPECT_GT(media::psnr(*original, *decoded.value()), 30.0) << i;
  }
}

TEST(ClipCache, InsertSurvivesBudgetSmallerThanOneClip) {
  components::clear_clip_caches();
  // Budget below the size of any single clip: the freshly inserted entry
  // must be retained (the caller holds a reference to it), not evicted
  // out from under the returned pointer.
  size_t prev = components::set_clip_cache_budget(1);
  components::ClipKey key{1234, 32, 24, media::PixelFormat::kYuv420, 2, 0};
  auto clip = components::cached_raw_clip(key);
  ASSERT_NE(clip, nullptr);
  EXPECT_EQ(clip->frame_count(), 2);
  EXPECT_GT(components::clip_cache_bytes(), 0u);
  // A second insert evicts the colder entry but again keeps the new one.
  components::ClipKey key2 = key;
  key2.seed = 5678;
  auto clip2 = components::cached_raw_clip(key2);
  ASSERT_NE(clip2, nullptr);
  size_t clip2_bytes = static_cast<size_t>(clip2->frame_count()) *
                       clip2->frame(0)->bytes();
  EXPECT_EQ(components::clip_cache_bytes(), clip2_bytes);
  // The evicted clip stays alive through the caller's shared_ptr.
  EXPECT_EQ(clip->frame_count(), 2);
  components::set_clip_cache_budget(prev);
  components::clear_clip_caches();
}

TEST(Registry, ListsAllStandardClasses) {
  hinch::ComponentRegistry reg;
  components::register_standard(reg);
  for (const char* name :
       {"video_source", "mjpeg_source", "copy", "downscale", "blend",
        "blur_h", "blur_v", "jpeg_decode", "idct", "frame_sink", "yuv_sink",
        "event_ticker", "event_script", "scene_change", "jpeg_encode",
        "mjpeg_sink"}) {
    EXPECT_TRUE(reg.has_class(name)) << name;
  }
  EXPECT_GE(reg.class_names().size(), 13u);
}

}  // namespace
