// Reconfiguration semantics (§3.4): options, managers, event rules,
// quiescing, pre-creation accounting.
#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "sp/graph.hpp"
#include "xspcl/loader.hpp"

namespace {

using hinch::Program;
using hinch::RunConfig;
using hinch::SimParams;
using hinch::SimResult;

// Counts runs per instance, via a test-global board.
struct Counts {
  std::mutex mutex;
  std::map<std::string, int> runs;
  std::map<std::string, std::string> reconfigs;
  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    runs.clear();
    reconfigs.clear();
  }
  int of(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    return runs[name];
  }
  std::string reconfig_of(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    return reconfigs[name];
  }
};

Counts& board() {
  static Counts c;
  return c;
}

class CountingComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig&) {
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::make_unique<CountingComponent>());
  }
  void run(hinch::ExecContext& ctx) override {
    ctx.charge_compute(100);
    std::lock_guard<std::mutex> lock(board().mutex);
    ++board().runs[instance()];
  }
  void reconfigure(std::string_view request) override {
    std::lock_guard<std::mutex> lock(board().mutex);
    board().reconfigs[instance()] = std::string(request);
  }
};

hinch::ComponentRegistry make_registry() {
  hinch::ComponentRegistry reg;
  components::register_standard(reg);
  reg.register_class("counter", &CountingComponent::create);
  return reg;
}

class ReconfigTest : public ::testing::Test {
 protected:
  void SetUp() override { board().clear(); }
  hinch::ComponentRegistry registry_ = make_registry();

  std::unique_ptr<Program> build(const std::string& spec) {
    auto prog = xspcl::build_program(spec, registry_);
    EXPECT_TRUE(prog.is_ok()) << prog.status().to_string();
    return prog.is_ok() ? std::move(prog).take() : nullptr;
  }
};

// A manager with one option and a scripted event source.
std::string option_spec(const std::string& script, bool enabled) {
  return std::string(R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="user" class="event_script">
        <param name="queue" value="ui"/>
        <param name="script" value=")") +
         script + R"("/>
      </component>
      <component name="always" class="counter"/>
      <manager name="mgr" queue="ui">
        <on event="flip" action="toggle" option="opt"/>
        <on event="on"   action="enable" option="opt"/>
        <on event="off"  action="disable" option="opt"/>
        <on event="move" action="reconfigure"/>
        <body>
          <option name="opt" enabled=")" +
         (enabled ? "true" : "false") + R"(">
            <component name="optional" class="counter"/>
          </option>
        </body>
      </manager>
    </body>
  </procedure>
</xspcl>
)";
}

SimResult run_sim(Program& prog, int64_t iterations, int cores = 2,
                  int window = 5) {
  RunConfig run;
  run.iterations = iterations;
  run.window = window;
  SimParams sim;
  sim.cores = cores;
  return hinch::run_on_sim(prog, run, sim);
}

TEST_F(ReconfigTest, DisabledOptionNeverRuns) {
  auto prog = build(option_spec("", false));
  ASSERT_TRUE(prog);
  SimResult r = run_sim(*prog, 10);
  EXPECT_EQ(board().of("always"), 10);
  EXPECT_EQ(board().of("optional"), 0);
  EXPECT_EQ(r.sched.reconfigurations, 0u);
  EXPECT_GT(r.sched.jobs_skipped, 0u);
}

TEST_F(ReconfigTest, EnabledOptionAlwaysRuns) {
  auto prog = build(option_spec("", true));
  ASSERT_TRUE(prog);
  run_sim(*prog, 10);
  EXPECT_EQ(board().of("optional"), 10);
}

TEST_F(ReconfigTest, ToggleEnablesMidRun) {
  // The event fires at iteration 4; the manager polls it at the entry of
  // an iteration >= 4, so the option runs for the remaining iterations.
  auto prog = build(option_spec("4:flip", false));
  ASSERT_TRUE(prog);
  SimResult r = run_sim(*prog, 12);
  EXPECT_EQ(r.sched.reconfigurations, 1u);
  int opt_runs = board().of("optional");
  EXPECT_GT(opt_runs, 0);
  // With 5 pipelined iterations in flight, the enter of an earlier
  // iteration can legitimately observe the asynchronous event (§2:
  // "events can be sent or received at any moment, independent of the
  // current iteration"), so the option may engage up to window-1
  // iterations before the sender's iteration.
  EXPECT_LE(opt_runs, 12);
  EXPECT_GE(12 - opt_runs, 3);
  EXPECT_EQ(board().of("always"), 12);
}

TEST_F(ReconfigTest, ToggleTwiceReturnsToDisabled) {
  auto prog = build(option_spec("3:flip;8:flip", false));
  ASSERT_TRUE(prog);
  SimResult r = run_sim(*prog, 16);
  EXPECT_EQ(r.sched.reconfigurations, 2u);
  int opt_runs = board().of("optional");
  EXPECT_GT(opt_runs, 0);
  EXPECT_LT(opt_runs, 8);
}

TEST_F(ReconfigTest, EnableIgnoredWhenAlreadyEnabled) {
  // §3.4: "The event is ignored when the option is already in the
  // required state."
  auto prog = build(option_spec("3:on;5:on;7:on", true));
  ASSERT_TRUE(prog);
  SimResult r = run_sim(*prog, 12);
  EXPECT_EQ(r.sched.reconfigurations, 0u);
  EXPECT_EQ(board().of("optional"), 12);
  EXPECT_EQ(r.sched.components_created, 0u);
}

TEST_F(ReconfigTest, DisableStopsRuns) {
  auto prog = build(option_spec("5:off", true));
  ASSERT_TRUE(prog);
  SimResult r = run_sim(*prog, 12);
  EXPECT_EQ(r.sched.reconfigurations, 1u);
  int opt_runs = board().of("optional");
  EXPECT_GE(opt_runs, 2);  // pipelined enters may see the event early
  EXPECT_LT(opt_runs, 12);
}

TEST_F(ReconfigTest, EnablePreCreatesComponents) {
  auto prog = build(option_spec("4:on", false));
  ASSERT_TRUE(prog);
  SimResult r = run_sim(*prog, 12);
  EXPECT_EQ(r.sched.components_created, 1u);  // one component in the option
}

TEST_F(ReconfigTest, ReconfigureRuleBroadcastsToSubgraph) {
  auto prog = build(option_spec("4:move:pos=9,9", true));
  ASSERT_TRUE(prog);
  run_sim(*prog, 12);
  // The manager's subgraph contains `optional`; `always` is outside.
  EXPECT_EQ(board().reconfig_of("optional"), "pos=9,9");
  EXPECT_EQ(board().reconfig_of("always"), "");
}

TEST_F(ReconfigTest, ForwardRuleMovesEventsBetweenQueues) {
  const char* spec = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="user" class="event_script">
        <param name="queue" value="front"/>
        <param name="script" value="3:flip"/>
      </component>
      <manager name="router" queue="front">
        <on event="flip" action="forward" queue="back"/>
        <body><component name="c1" class="counter"/></body>
      </manager>
      <manager name="mgr" queue="back">
        <on event="flip" action="toggle" option="opt"/>
        <body>
          <option name="opt" enabled="false">
            <component name="optional" class="counter"/>
          </option>
        </body>
      </manager>
    </body>
  </procedure>
</xspcl>
)";
  auto prog = build(spec);
  ASSERT_TRUE(prog);
  SimResult r = run_sim(*prog, 12);
  EXPECT_EQ(r.sched.reconfigurations, 1u);
  EXPECT_GT(board().of("optional"), 0);
}

TEST_F(ReconfigTest, UnmatchedEventsAreDropped) {
  auto prog = build(option_spec("2:unknown_event", false));
  ASSERT_TRUE(prog);
  SimResult r = run_sim(*prog, 8);
  EXPECT_EQ(r.sched.reconfigurations, 0u);
  EXPECT_EQ(board().of("optional"), 0);
  EXPECT_GE(r.sched.events_handled, 1u);
}

TEST_F(ReconfigTest, TwoOptionsToggleTogether) {
  // The Blur-35 pattern: one event toggles two options in opposite
  // directions, so exactly one branch is active at all times.
  const char* spec = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="user" class="event_script">
        <param name="queue" value="ui"/>
        <param name="script" value="4:switch;9:switch"/>
      </component>
      <manager name="mgr" queue="ui">
        <on event="switch" action="toggle" option="a"/>
        <on event="switch" action="toggle" option="b"/>
        <body>
          <option name="a" enabled="true">
            <component name="branch_a" class="counter"/>
          </option>
          <option name="b" enabled="false">
            <component name="branch_b" class="counter"/>
          </option>
        </body>
      </manager>
    </body>
  </procedure>
</xspcl>
)";
  auto prog = build(spec);
  ASSERT_TRUE(prog);
  SimResult r = run_sim(*prog, 14);
  EXPECT_EQ(r.sched.reconfigurations, 2u);
  // Every iteration runs exactly one branch.
  EXPECT_EQ(board().of("branch_a") + board().of("branch_b"), 14);
  EXPECT_GT(board().of("branch_a"), 0);
  EXPECT_GT(board().of("branch_b"), 0);
}

TEST_F(ReconfigTest, ReconfigurationCostsCycles) {
  // The same workload with and without a mid-run toggle: the toggling
  // run must be slower (quiesce + splice), the Fig. 10 effect.
  auto quiet = build(option_spec("", false));
  auto busy = build(option_spec("2:flip;4:flip;6:flip;8:flip", false));
  ASSERT_TRUE(quiet && busy);
  uint64_t t_quiet = run_sim(*quiet, 24, 4).total_cycles;
  board().clear();
  uint64_t t_busy = run_sim(*busy, 24, 4).total_cycles;
  EXPECT_GT(t_busy, t_quiet);
}

TEST_F(ReconfigTest, InitialReconfigDeliveredAtCreation) {
  const char* spec = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="c" class="counter">
        <reconfig request="mode=fast"/>
      </component>
    </body>
  </procedure>
</xspcl>
)";
  auto prog = build(spec);
  ASSERT_TRUE(prog);
  EXPECT_EQ(board().reconfig_of("c"), "mode=fast");
}

TEST_F(ReconfigTest, ThreadBackendHandlesReconfigToo) {
  auto prog = build(option_spec("4:flip;9:flip", false));
  ASSERT_TRUE(prog);
  RunConfig run;
  run.iterations = 14;
  hinch::ThreadResult r = hinch::run_on_threads(*prog, run, 3);
  EXPECT_EQ(r.sched.reconfigurations, 2u);
  EXPECT_GT(board().of("optional"), 0);
}

}  // namespace
