#include <gtest/gtest.h>

#include "sp/dot.hpp"
#include "sp/graph.hpp"
#include "sp/transform.hpp"
#include "sp/validate.hpp"

namespace {

using sp::EventAction;
using sp::EventRule;
using sp::LeafSpec;
using sp::NodeKind;
using sp::NodePtr;
using sp::ParShape;

LeafSpec leaf(const std::string& name, const std::string& in = "",
              const std::string& out = "") {
  LeafSpec spec;
  spec.instance = name;
  spec.klass = "k_" + name;
  if (!in.empty()) spec.inputs.push_back({"in", in});
  if (!out.empty()) spec.outputs.push_back({"out", out});
  return spec;
}

NodePtr simple_chain() {
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("src", "", "a")));
  steps.push_back(sp::make_leaf(leaf("mid", "a", "b")));
  steps.push_back(sp::make_leaf(leaf("sink", "b", "")));
  return sp::make_seq(std::move(steps));
}

TEST(SpGraph, BuildAndStats) {
  NodePtr root = simple_chain();
  sp::GraphStats s = sp::stats(*root);
  EXPECT_EQ(s.leaves, 3);
  EXPECT_EQ(s.expanded_leaves, 3);
  EXPECT_EQ(s.seq_nodes, 1);
  EXPECT_EQ(s.par_nodes, 0);
}

TEST(SpGraph, SliceExpandsLeafCount) {
  std::vector<NodePtr> block;
  block.push_back(sp::make_leaf(leaf("work", "a", "b")));
  NodePtr par = sp::make_par(ParShape::kSlice, 8, [&] {
    std::vector<NodePtr> v;
    v.push_back(sp::make_seq(std::move(block)));
    return v;
  }());
  sp::GraphStats s = sp::stats(*par);
  EXPECT_EQ(s.leaves, 1);
  EXPECT_EQ(s.expanded_leaves, 8);
}

TEST(SpGraph, CloneIsDeep) {
  NodePtr root = simple_chain();
  NodePtr copy = root->clone();
  copy->children[0]->leaf.instance = "changed";
  EXPECT_EQ(root->children[0]->leaf.instance, "src");
}

TEST(SpGraph, CollectLeavesInScheduleOrder) {
  NodePtr root = simple_chain();
  auto leaves = sp::collect_leaves(*root);
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0]->leaf.instance, "src");
  EXPECT_EQ(leaves[2]->leaf.instance, "sink");
}

TEST(SpValidate, AcceptsSimpleChain) {
  NodePtr root = simple_chain();
  EXPECT_TRUE(sp::validate(*root).is_ok());
}

TEST(SpValidate, RejectsDuplicateInstances) {
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("x", "", "a")));
  steps.push_back(sp::make_leaf(leaf("x", "a", "")));
  NodePtr root = sp::make_seq(std::move(steps));
  auto st = sp::validate(*root);
  EXPECT_EQ(st.code(), support::Code::kAlreadyExists);
}

TEST(SpValidate, RejectsUnwrittenStream) {
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("only_reader", "ghost", "")));
  NodePtr root = sp::make_seq(std::move(steps));
  auto st = sp::validate(*root);
  EXPECT_EQ(st.code(), support::Code::kFailedPrecondition);
  EXPECT_NE(st.message().find("ghost"), std::string::npos);
}

TEST(SpValidate, RejectsOptionOutsideManager) {
  NodePtr option = sp::make_option("opt", true,
                                   sp::make_leaf(leaf("x", "", "a")));
  auto st = sp::validate(*option);
  EXPECT_EQ(st.code(), support::Code::kFailedPrecondition);
}

TEST(SpValidate, AcceptsOptionInsideManager) {
  NodePtr option = sp::make_option("opt", true,
                                   sp::make_leaf(leaf("x", "", "a")));
  NodePtr mgr = sp::make_manager(
      "m", "q", {EventRule{"e", EventAction::kToggle, "opt", ""}},
      std::move(option));
  std::vector<NodePtr> steps;
  steps.push_back(std::move(mgr));
  steps.push_back(sp::make_leaf(leaf("sink", "a", "")));
  NodePtr root = sp::make_seq(std::move(steps));
  EXPECT_TRUE(sp::validate(*root).is_ok()) << sp::validate(*root).to_string();
}

TEST(SpValidate, RejectsRuleForUnknownOption) {
  NodePtr option = sp::make_option("opt", true,
                                   sp::make_leaf(leaf("x", "", "a")));
  NodePtr mgr = sp::make_manager(
      "m", "q", {EventRule{"e", EventAction::kToggle, "other", ""}},
      std::move(option));
  auto st = sp::validate(*mgr);
  EXPECT_EQ(st.code(), support::Code::kNotFound);
}

TEST(SpValidate, RejectsSliceWithMultipleParblocks) {
  std::vector<NodePtr> blocks;
  blocks.push_back(sp::make_leaf(leaf("a", "", "s")));
  blocks.push_back(sp::make_leaf(leaf("b", "", "t")));
  NodePtr par = sp::make_par(ParShape::kSlice, 4, std::move(blocks));
  EXPECT_FALSE(sp::validate(*par).is_ok());
}

TEST(SpValidate, RejectsTaskWithReplicas) {
  std::vector<NodePtr> blocks;
  blocks.push_back(sp::make_leaf(leaf("a", "", "s")));
  NodePtr par = sp::make_par(ParShape::kTask, 3, std::move(blocks));
  EXPECT_FALSE(sp::validate(*par).is_ok());
}

TEST(SpValidate, RejectsEmptyParallel) {
  NodePtr par = sp::make_par(ParShape::kTask, 1, {});
  EXPECT_FALSE(sp::validate(*par).is_ok());
}

TEST(SpValidate, RejectsManagerWithoutQueue) {
  NodePtr mgr = sp::make_manager("m", "", {},
                                 sp::make_leaf(leaf("x", "", "a")));
  EXPECT_FALSE(sp::validate(*mgr).is_ok());
}

// --- crossdep / SP-form ----------------------------------------------------

NodePtr crossdep_region(int replicas) {
  std::vector<NodePtr> blocks;
  blocks.push_back(sp::make_leaf(leaf("h", "in", "tmp")));
  blocks.push_back(sp::make_leaf(leaf("v", "tmp", "out")));
  return sp::make_par(ParShape::kCrossDep, replicas, std::move(blocks));
}

TEST(SpForm, CrossdepIsNotSp) {
  NodePtr region = crossdep_region(4);
  EXPECT_FALSE(sp::is_sp_form(*region));
  EXPECT_TRUE(sp::is_sp_form(*simple_chain()));
}

TEST(SpForm, ToSpFormInsertsSyncPoints) {
  NodePtr region = crossdep_region(4);
  NodePtr sp_form = sp::to_sp_form(*region);
  EXPECT_TRUE(sp::is_sp_form(*sp_form));
  // Becomes a seq of two slice regions with the same replica count.
  ASSERT_EQ(sp_form->kind(), NodeKind::kSeq);
  ASSERT_EQ(sp_form->children.size(), 2u);
  for (const NodePtr& c : sp_form->children) {
    EXPECT_EQ(c->kind(), NodeKind::kPar);
    EXPECT_EQ(c->shape, ParShape::kSlice);
    EXPECT_EQ(c->replicas, 4);
  }
  // Same total expanded work.
  EXPECT_EQ(sp::stats(*sp_form).expanded_leaves,
            sp::stats(*region).expanded_leaves);
}

TEST(SpForm, ToSpFormIsIdentityOnSpGraphs) {
  NodePtr root = simple_chain();
  NodePtr converted = sp::to_sp_form(*root);
  EXPECT_EQ(sp::stats(*converted).leaves, 3);
  EXPECT_TRUE(sp::is_sp_form(*converted));
}

TEST(Transform, StripDisabledOptions) {
  NodePtr on = sp::make_option("on", true, sp::make_leaf(leaf("a", "", "s")));
  NodePtr off = sp::make_option("off", false,
                                sp::make_leaf(leaf("b", "", "t")));
  std::vector<NodePtr> steps;
  steps.push_back(std::move(on));
  steps.push_back(std::move(off));
  NodePtr mgr =
      sp::make_manager("m", "q", {}, sp::make_seq(std::move(steps)));
  NodePtr stripped = sp::strip_disabled_options(*mgr);
  sp::GraphStats s = sp::stats(*stripped);
  EXPECT_EQ(s.leaves, 1);
  EXPECT_EQ(s.options, 0);
}

TEST(Dot, MentionsEveryInstance) {
  NodePtr root = simple_chain();
  std::string dot = sp::to_dot(*root, "test");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const char* name : {"src", "mid", "sink"})
    EXPECT_NE(dot.find(name), std::string::npos) << name;
}

TEST(Dot, RendersAllNodeKinds) {
  NodePtr option = sp::make_option("opt", false,
                                   sp::make_leaf(leaf("x", "", "a")));
  NodePtr mgr = sp::make_manager(
      "m", "q", {EventRule{"e", EventAction::kEnable, "opt", ""}},
      std::move(option));
  std::vector<NodePtr> blocks;
  blocks.push_back(sp::make_leaf(leaf("w", "a", "b")));
  std::vector<NodePtr> steps;
  steps.push_back(std::move(mgr));
  steps.push_back(sp::make_par(ParShape::kSlice, 3, std::move(blocks)));
  std::string dot = sp::to_dot(*sp::make_seq(std::move(steps)));
  EXPECT_NE(dot.find("manager m enter"), std::string::npos);
  EXPECT_NE(dot.find("option opt"), std::string::npos);
  EXPECT_NE(dot.find("par slice n=3"), std::string::npos);
}

TEST(SpValidate, GroupAcceptsOnlyLeaves) {
  std::vector<NodePtr> comps;
  comps.push_back(sp::make_leaf(leaf("a", "", "s")));
  comps.push_back(sp::make_leaf(leaf("b", "s", "t")));
  NodePtr ok_group = sp::make_group(std::move(comps));
  EXPECT_TRUE(sp::validate(*ok_group).is_ok());

  std::vector<NodePtr> bad;
  bad.push_back(sp::make_seq({}));
  NodePtr bad_group = sp::make_group(std::move(bad));
  EXPECT_FALSE(sp::validate(*bad_group).is_ok());
  EXPECT_FALSE(sp::validate(*sp::make_group({})).is_ok());
}

TEST(SpGraph, GroupCountsLeaves) {
  std::vector<NodePtr> comps;
  comps.push_back(sp::make_leaf(leaf("a", "", "s")));
  comps.push_back(sp::make_leaf(leaf("b", "s", "t")));
  NodePtr g = sp::make_group(std::move(comps));
  EXPECT_EQ(sp::stats(*g).leaves, 2);
  EXPECT_STREQ(sp::kind_name(sp::NodeKind::kGroup), "group");
}

TEST(Names, EnumPrinters) {
  EXPECT_STREQ(sp::kind_name(NodeKind::kLeaf), "leaf");
  EXPECT_STREQ(sp::shape_name(ParShape::kCrossDep), "crossdep");
  EXPECT_STREQ(sp::action_name(EventAction::kForward), "forward");
}

}  // namespace
