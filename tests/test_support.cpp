#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/strings.hpp"

namespace {

using support::Code;
using support::Result;
using support::Status;

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = support::invalid_argument("bad thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad thing");
}

TEST(Status, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(support::not_found("x").code(), Code::kNotFound);
  EXPECT_EQ(support::already_exists("x").code(), Code::kAlreadyExists);
  EXPECT_EQ(support::failed_precondition("x").code(),
            Code::kFailedPrecondition);
  EXPECT_EQ(support::out_of_range("x").code(), Code::kOutOfRange);
  EXPECT_EQ(support::unimplemented("x").code(), Code::kUnimplemented);
  EXPECT_EQ(support::internal_error("x").code(), Code::kInternal);
  EXPECT_EQ(support::io_error("x").code(), Code::kIo);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsStatus) {
  Result<int> r(support::not_found("gone"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).take();
  EXPECT_EQ(v, "hello");
}

TEST(Result, MacroPropagatesError) {
  auto inner = []() -> Result<int> {
    return support::invalid_argument("inner");
  };
  auto outer = [&]() -> Status {
    SUP_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::ok();
  };
  EXPECT_EQ(outer().code(), Code::kInvalidArgument);
}

TEST(Strings, Trim) {
  EXPECT_EQ(support::trim("  abc \n"), "abc");
  EXPECT_EQ(support::trim(""), "");
  EXPECT_EQ(support::trim("   "), "");
  EXPECT_EQ(support::trim("x"), "x");
}

TEST(Strings, Split) {
  auto parts = support::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(support::split("", ',').size(), 1u);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(support::starts_with("pos=1,2", "pos="));
  EXPECT_FALSE(support::starts_with("po", "pos="));
  EXPECT_TRUE(support::ends_with("file.xml", ".xml"));
  EXPECT_FALSE(support::ends_with(".xml", "file.xml"));
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(support::parse_int("42").value(), 42);
  EXPECT_EQ(support::parse_int(" -7 ").value(), -7);
  EXPECT_FALSE(support::parse_int("").is_ok());
  EXPECT_FALSE(support::parse_int("12x").is_ok());
  EXPECT_FALSE(support::parse_int("4.5").is_ok());
  EXPECT_FALSE(support::parse_int("999999999999999999999999").is_ok());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(support::parse_double("2.5").value(), 2.5);
  EXPECT_FALSE(support::parse_double("abc").is_ok());
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(support::is_identifier("abc_1"));
  EXPECT_TRUE(support::is_identifier("_x"));
  EXPECT_TRUE(support::is_identifier("a.b-c"));
  EXPECT_FALSE(support::is_identifier(""));
  EXPECT_FALSE(support::is_identifier("1abc"));
  EXPECT_FALSE(support::is_identifier("a b"));
}

TEST(Strings, Format) {
  EXPECT_EQ(support::format("x=%d y=%s", 3, "hi"), "x=3 y=hi");
  EXPECT_EQ(support::format("%s", ""), "");
}

TEST(Rng, Deterministic) {
  support::SplitMix64 a(123);
  support::SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  support::SplitMix64 a(1);
  support::SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

class RngRangeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(RngRangeTest, NextRangeStaysInBounds) {
  support::SplitMix64 rng(static_cast<uint64_t>(GetParam()) + 7);
  int64_t lo = -GetParam();
  int64_t hi = GetParam();
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.next_range(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values(1, 3, 10, 255, 1000));

TEST(Rng, DoubleInUnitInterval) {
  support::SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
