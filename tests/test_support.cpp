#include <gtest/gtest.h>

#include <cmath>

#include "support/cpu.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/strings.hpp"

namespace {

using support::Code;
using support::Result;
using support::Status;

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = support::invalid_argument("bad thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad thing");
}

TEST(Status, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(support::not_found("x").code(), Code::kNotFound);
  EXPECT_EQ(support::already_exists("x").code(), Code::kAlreadyExists);
  EXPECT_EQ(support::failed_precondition("x").code(),
            Code::kFailedPrecondition);
  EXPECT_EQ(support::out_of_range("x").code(), Code::kOutOfRange);
  EXPECT_EQ(support::unimplemented("x").code(), Code::kUnimplemented);
  EXPECT_EQ(support::internal_error("x").code(), Code::kInternal);
  EXPECT_EQ(support::io_error("x").code(), Code::kIo);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsStatus) {
  Result<int> r(support::not_found("gone"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).take();
  EXPECT_EQ(v, "hello");
}

TEST(Result, MacroPropagatesError) {
  auto inner = []() -> Result<int> {
    return support::invalid_argument("inner");
  };
  auto outer = [&]() -> Status {
    SUP_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::ok();
  };
  EXPECT_EQ(outer().code(), Code::kInvalidArgument);
}

TEST(Strings, Trim) {
  EXPECT_EQ(support::trim("  abc \n"), "abc");
  EXPECT_EQ(support::trim(""), "");
  EXPECT_EQ(support::trim("   "), "");
  EXPECT_EQ(support::trim("x"), "x");
}

TEST(Strings, Split) {
  auto parts = support::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(support::split("", ',').size(), 1u);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(support::starts_with("pos=1,2", "pos="));
  EXPECT_FALSE(support::starts_with("po", "pos="));
  EXPECT_TRUE(support::ends_with("file.xml", ".xml"));
  EXPECT_FALSE(support::ends_with(".xml", "file.xml"));
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(support::parse_int("42").value(), 42);
  EXPECT_EQ(support::parse_int(" -7 ").value(), -7);
  EXPECT_FALSE(support::parse_int("").is_ok());
  EXPECT_FALSE(support::parse_int("12x").is_ok());
  EXPECT_FALSE(support::parse_int("4.5").is_ok());
  EXPECT_FALSE(support::parse_int("999999999999999999999999").is_ok());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(support::parse_double("2.5").value(), 2.5);
  EXPECT_FALSE(support::parse_double("abc").is_ok());
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(support::is_identifier("abc_1"));
  EXPECT_TRUE(support::is_identifier("_x"));
  EXPECT_TRUE(support::is_identifier("a.b-c"));
  EXPECT_FALSE(support::is_identifier(""));
  EXPECT_FALSE(support::is_identifier("1abc"));
  EXPECT_FALSE(support::is_identifier("a b"));
}

TEST(Strings, Format) {
  EXPECT_EQ(support::format("x=%d y=%s", 3, "hi"), "x=3 y=hi");
  EXPECT_EQ(support::format("%s", ""), "");
}

TEST(Rng, Deterministic) {
  support::SplitMix64 a(123);
  support::SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  support::SplitMix64 a(1);
  support::SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

class RngRangeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(RngRangeTest, NextRangeStaysInBounds) {
  support::SplitMix64 rng(static_cast<uint64_t>(GetParam()) + 7);
  int64_t lo = -GetParam();
  int64_t hi = GetParam();
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.next_range(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values(1, 3, 10, 255, 1000));

TEST(Rng, DoubleInUnitInterval) {
  support::SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- support::json ----------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(support::json::parse("null").value().is_null());
  EXPECT_TRUE(support::json::parse("true").value().boolean());
  EXPECT_FALSE(support::json::parse("false").value().boolean());
  EXPECT_DOUBLE_EQ(support::json::parse("-12.5e2").value().number(),
                   -1250.0);
  EXPECT_EQ(support::json::parse("42").value().number_int(), 42);
  EXPECT_EQ(support::json::parse("\"hi\"").value().str(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  auto parsed = support::json::parse(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}, "e": false})");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const support::json::Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  const support::json::Value* a = root.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(a->array()[0].number_int(), 1);
  EXPECT_EQ(a->array()[2].string_or("b", ""), "x");
  ASSERT_NE(root.find("c"), nullptr);
  EXPECT_TRUE(root.find("c")->find("d")->is_null());
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(Json, DecodesStringEscapes) {
  auto parsed =
      support::json::parse(R"("a\"b\\c\nd\teAé")");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().str(), "a\"b\\c\nd\teA\xC3\xA9");
}

TEST(Json, PreservesObjectOrderAndDuplicates) {
  auto parsed = support::json::parse(R"({"z": 1, "a": 2})");
  ASSERT_TRUE(parsed.is_ok());
  const auto& members = parsed.value().object();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(support::json::parse("").is_ok());
  EXPECT_FALSE(support::json::parse("{").is_ok());
  EXPECT_FALSE(support::json::parse("[1,]").is_ok());
  EXPECT_FALSE(support::json::parse("{\"a\" 1}").is_ok());
  EXPECT_FALSE(support::json::parse("nul").is_ok());
  EXPECT_FALSE(support::json::parse("1 2").is_ok());
  EXPECT_FALSE(support::json::parse("\"unterminated").is_ok());
  EXPECT_FALSE(support::json::parse("\"bad\\q\"").is_ok());
  // Errors carry a byte offset.
  EXPECT_NE(support::json::parse("[1,]").status().message().find("byte"),
            std::string::npos);
}

TEST(Json, NumberOrAndStringOrFallbacks) {
  auto parsed = support::json::parse(R"({"n": 3, "s": "v"})");
  ASSERT_TRUE(parsed.is_ok());
  const support::json::Value& root = parsed.value();
  EXPECT_DOUBLE_EQ(root.number_or("n", -1), 3);
  EXPECT_DOUBLE_EQ(root.number_or("s", -1), -1);  // wrong type
  EXPECT_EQ(root.string_or("s", "d"), "v");
  EXPECT_EQ(root.string_or("n", "d"), "d");  // wrong type
  EXPECT_EQ(root.string_or("missing", "d"), "d");
}

TEST(Json, ParsesExponentFormNumbers) {
  EXPECT_DOUBLE_EQ(support::json::parse("6.02e23").value().number(),
                   6.02e23);
  EXPECT_DOUBLE_EQ(support::json::parse("1E+3").value().number(), 1000.0);
  EXPECT_DOUBLE_EQ(support::json::parse("-2.5e-2").value().number(),
                   -0.025);
  EXPECT_DOUBLE_EQ(support::json::parse("5e0").value().number(), 5.0);
  // Huge magnitudes saturate rather than reject (JSON has no range
  // limit).
  auto huge = support::json::parse("1e999");
  ASSERT_TRUE(huge.is_ok());
  EXPECT_TRUE(std::isinf(huge.value().number()));
  auto neg_huge = support::json::parse("-1e999");
  ASSERT_TRUE(neg_huge.is_ok());
  EXPECT_TRUE(std::isinf(neg_huge.value().number()));
  EXPECT_LT(neg_huge.value().number(), 0);
  // Exponent without digits is still malformed.
  EXPECT_FALSE(support::json::parse("1e").is_ok());
  EXPECT_FALSE(support::json::parse("1e+").is_ok());
}

TEST(Json, CombinesSurrogatePairsIntoUtf8) {
  // U+1D11E (musical G clef) = 𝄞: one 4-byte UTF-8 sequence,
  // not two 3-byte CESU-8 halves.
  auto parsed = support::json::parse(R"("𝄞")");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().str(), "\xF0\x9D\x84\x9E");
  // An emoji the trace-name corpus actually contains.
  auto emoji = support::json::parse(R"("😀")");
  ASSERT_TRUE(emoji.is_ok());
  EXPECT_EQ(emoji.value().str(), "\xF0\x9F\x98\x80");
  // A high surrogate not followed by a low one passes through as-is
  // (lenient), and the follower is decoded on its own.
  auto unpaired = support::json::parse(R"("\uD834x")");
  ASSERT_TRUE(unpaired.is_ok());
  EXPECT_EQ(unpaired.value().str(), "\xED\xA0\xB4x");
  // "\u" follower that is not a low surrogate: the parser rewinds and
  // decodes it as its own escape.
  auto not_low = support::json::parse(R"("\uD834\u0041")");
  ASSERT_TRUE(not_low.is_ok());
  EXPECT_EQ(not_low.value().str(), "\xED\xA0\xB4\x41");
  // Truncated escapes still reject.
  EXPECT_FALSE(support::json::parse(R"("\uD834\u12")").is_ok());
}

TEST(Json, AcceptsDeeplyNestedArrays) {
  // 512 levels: rejected by the old depth cap of 200, comfortably
  // within real stack limits.
  std::string deep;
  for (int i = 0; i < 512; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 512; ++i) deep += ']';
  auto parsed = support::json::parse(deep);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const support::json::Value* v = &parsed.value();
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(v->is_array());
    ASSERT_EQ(v->array().size(), 1u);
    v = &v->array()[0];
  }
  EXPECT_EQ(v->number_int(), 1);
  // The (raised) recursion cap still exists.
  std::string too_deep;
  for (int i = 0; i < 2000; ++i) too_deep += '[';
  EXPECT_FALSE(support::json::parse(too_deep).is_ok());
}

TEST(Cpu, ProbeIsConsistent) {
  support::CpuFeatures f = support::probe_cpu_features();
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_TRUE(f.sse2);  // x86-64 architectural baseline
  EXPECT_FALSE(f.neon);
#elif defined(__aarch64__)
  EXPECT_TRUE(f.neon);
  EXPECT_FALSE(f.sse2);
  EXPECT_FALSE(f.avx2);
#endif
  if (f.avx2) EXPECT_TRUE(f.sse2);  // AVX2 implies the baseline
}

TEST(Cpu, ForceScalarZeroesCachedFeatures) {
  const support::CpuFeatures& f = support::cpu_features();
  if (support::force_scalar_env()) {
    EXPECT_FALSE(f.sse2);
    EXPECT_FALSE(f.avx2);
    EXPECT_FALSE(f.neon);
  } else {
    support::CpuFeatures raw = support::probe_cpu_features();
    EXPECT_EQ(f.sse2, raw.sse2);
    EXPECT_EQ(f.avx2, raw.avx2);
    EXPECT_EQ(f.neon, raw.neon);
  }
}

}  // namespace
