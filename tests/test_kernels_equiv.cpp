// Equivalence pins for the optimized media hot path.
//
// Every border-split / table-driven / fixed-point rewrite must stay
// faithful to the straightforward scalar formulation:
//  - kernels: bit-identical to the pre-optimization scalar references
//    (re-implemented here, deliberately naive) across odd widths/offsets;
//  - any row-range partition (the Hinch `slice` contract) reproduces the
//    full-range run;
//  - the table-driven Huffman engine decodes bit-identically to the
//    bit-serial reference engine;
//  - the fixed-point AAN IDCT stays within +-1 LSB of the float
//    reference on random coefficient blocks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "media/frame.hpp"
#include "media/jpeg.hpp"
#include "media/jpeg_common.hpp"
#include "media/kernels.hpp"
#include "media/metrics.hpp"
#include "media/synth.hpp"

namespace {

using media::ConstPlaneView;
using media::Frame;
using media::FramePtr;
using media::PixelFormat;
using media::PlaneView;

int clampi(int v, int lo, int hi) { return v < lo ? lo : (v > hi ? hi : v); }

// --- naive scalar references (the pre-optimization kernel bodies) -----------

uint8_t ref_box_average(ConstPlaneView src, int sx, int sy, int factor) {
  unsigned sum = 0;
  for (int dy = 0; dy < factor; ++dy) {
    const uint8_t* row = src.row(sy + dy) + sx;
    for (int dx = 0; dx < factor; ++dx) sum += row[dx];
  }
  unsigned n = static_cast<unsigned>(factor) * static_cast<unsigned>(factor);
  return static_cast<uint8_t>((sum + n / 2) / n);
}

uint8_t ref_mix(uint8_t fg, uint8_t bg, int alpha256) {
  int v = (fg * alpha256 + bg * (256 - alpha256) + 128) >> 8;
  return static_cast<uint8_t>(v);
}

void ref_downscale_box(ConstPlaneView src, PlaneView dst, int factor,
                       int row0, int row1) {
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  for (int y = row0; y < row1; ++y) {
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x)
      out[x] = ref_box_average(src, x * factor, y * factor, factor);
  }
}

void ref_blend(ConstPlaneView fg, PlaneView dst, int dst_x, int dst_y,
               int alpha256, int row0, int row1) {
  int y_begin = std::max({row0, dst_y, 0});
  int y_end = std::min({row1, dst_y + fg.height, dst.height});
  int x_begin = std::max(dst_x, 0);
  int x_end = std::min(dst_x + fg.width, dst.width);
  for (int y = y_begin; y < y_end; ++y) {
    const uint8_t* src_row = fg.row(y - dst_y);
    uint8_t* dst_row = dst.row(y);
    for (int x = x_begin; x < x_end; ++x)
      dst_row[x] = ref_mix(src_row[x - dst_x], dst_row[x], alpha256);
  }
}

void ref_downscale_blend(ConstPlaneView src, PlaneView dst, int factor,
                         int dst_x, int dst_y, int alpha256, int row0,
                         int row1) {
  const int out_w = src.width / factor;
  const int out_h = src.height / factor;
  int y_begin = std::max({row0, dst_y, 0});
  int y_end = std::min({row1, dst_y + out_h, dst.height});
  int x_begin = std::max(dst_x, 0);
  int x_end = std::min(dst_x + out_w, dst.width);
  for (int y = y_begin; y < y_end; ++y) {
    uint8_t* dst_row = dst.row(y);
    const int sy = (y - dst_y) * factor;
    for (int x = x_begin; x < x_end; ++x) {
      uint8_t v = ref_box_average(src, (x - dst_x) * factor, sy, factor);
      dst_row[x] = ref_mix(v, dst_row[x], alpha256);
    }
  }
}

void ref_blur_h(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
                int row1) {
  const int16_t* taps = media::gaussian_taps(kernel_size);
  const int r = kernel_size / 2;
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  for (int y = row0; y < row1; ++y) {
    const uint8_t* in = src.row(y);
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      int acc = 128;
      for (int k = -r; k <= r; ++k)
        acc += taps[k + r] * in[clampi(x + k, 0, src.width - 1)];
      out[x] = static_cast<uint8_t>(acc >> 8);
    }
  }
}

void ref_blur_v(ConstPlaneView src, PlaneView dst, int kernel_size, int row0,
                int row1) {
  const int16_t* taps = media::gaussian_taps(kernel_size);
  const int r = kernel_size / 2;
  row0 = clampi(row0, 0, dst.height);
  row1 = clampi(row1, 0, dst.height);
  for (int y = row0; y < row1; ++y) {
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      int acc = 128;
      for (int k = -r; k <= r; ++k)
        acc += taps[k + r] * src.row(clampi(y + k, 0, src.height - 1))[x];
      out[x] = static_cast<uint8_t>(acc >> 8);
    }
  }
}

FramePtr synth_gray(uint64_t seed, int w, int h, int t = 0) {
  media::SynthSpec spec{.seed = seed, .width = w, .height = h,
                        .format = PixelFormat::kGray};
  return media::make_synth_frame(spec, t);
}

// Run `fn(dst, row0, row1)` once over the full range and once per slice
// partition; all results must be bit-identical.
template <typename Fn>
void expect_slice_invariant(int height, int slices, Fn fn,
                            Frame& full_dst, Frame& sliced_dst) {
  fn(full_dst, 0, height);
  int row = 0;
  for (int s = 0; s < slices; ++s) {
    int rows = height / slices + (s < height % slices ? 1 : 0);
    fn(sliced_dst, row, row + rows);
    row += rows;
  }
  EXPECT_TRUE(full_dst.equals(sliced_dst)) << "slices=" << slices;
}

// --- kernel equivalence across odd widths and offsets -----------------------

// Odd plane sizes: exercise interior + border splits with widths around
// the kernel radius and non-multiple-of-factor dimensions.
class KernelSizeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(KernelSizeSweep, BlurMatchesScalarReference) {
  auto [w, h] = GetParam();
  FramePtr src = synth_gray(100 + static_cast<uint64_t>(w), w, h);
  Frame opt(PixelFormat::kGray, w, h), ref(PixelFormat::kGray, w, h);
  for (int k : {3, 5}) {
    media::blur_h(src->plane(0), opt.plane(0), k, 0, h);
    ref_blur_h(src->plane(0), ref.plane(0), k, 0, h);
    EXPECT_TRUE(opt.equals(ref)) << "blur_h k=" << k << " " << w << "x" << h;
    media::blur_v(src->plane(0), opt.plane(0), k, 0, h);
    ref_blur_v(src->plane(0), ref.plane(0), k, 0, h);
    EXPECT_TRUE(opt.equals(ref)) << "blur_v k=" << k << " " << w << "x" << h;
  }
}

TEST_P(KernelSizeSweep, DownscaleMatchesScalarReference) {
  auto [w, h] = GetParam();
  FramePtr src = synth_gray(200 + static_cast<uint64_t>(w), w, h);
  for (int factor : {1, 2, 3, 4}) {
    int dw = w / factor, dh = h / factor;
    if (dw == 0 || dh == 0) continue;
    Frame opt(PixelFormat::kGray, dw, dh), ref(PixelFormat::kGray, dw, dh);
    media::downscale_box(src->plane(0), opt.plane(0), factor, 0, dh);
    ref_downscale_box(src->plane(0), ref.plane(0), factor, 0, dh);
    EXPECT_TRUE(opt.equals(ref)) << "factor=" << factor << " " << w << "x"
                                 << h;
  }
}

INSTANTIATE_TEST_SUITE_P(OddSizes, KernelSizeSweep,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(2, 3),
                                           std::make_tuple(3, 5),
                                           std::make_tuple(5, 4),
                                           std::make_tuple(17, 9),
                                           std::make_tuple(31, 7),
                                           std::make_tuple(64, 48),
                                           std::make_tuple(65, 47),
                                           std::make_tuple(127, 33)));

// Blend and fused downscale-blend across odd offsets, including
// partially and fully off-canvas placements.
class BlendOffsetSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlendOffsetSweep, BlendMatchesScalarReference) {
  auto [dst_x, dst_y, alpha] = GetParam();
  FramePtr fg = synth_gray(300, 23, 17);
  FramePtr opt = synth_gray(301, 41, 29);
  FramePtr ref = opt->clone();
  media::blend(fg->plane(0), opt->plane(0), dst_x, dst_y, alpha, 0, 29);
  ref_blend(fg->plane(0), ref->plane(0), dst_x, dst_y, alpha, 0, 29);
  EXPECT_TRUE(opt->equals(*ref))
      << "dst=(" << dst_x << "," << dst_y << ") alpha=" << alpha;
}

TEST_P(BlendOffsetSweep, DownscaleBlendMatchesScalarReference) {
  auto [dst_x, dst_y, alpha] = GetParam();
  FramePtr src = synth_gray(302, 46, 34);
  for (int factor : {1, 2, 3}) {
    FramePtr opt = synth_gray(303, 41, 29);
    FramePtr ref = opt->clone();
    media::downscale_blend(src->plane(0), opt->plane(0), factor, dst_x,
                           dst_y, alpha, 0, 29);
    ref_downscale_blend(src->plane(0), ref->plane(0), factor, dst_x, dst_y,
                        alpha, 0, 29);
    EXPECT_TRUE(opt->equals(*ref))
        << "factor=" << factor << " dst=(" << dst_x << "," << dst_y
        << ") alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, BlendOffsetSweep,
    ::testing::Combine(::testing::Values(-7, 0, 3, 38, 100),
                       ::testing::Values(-5, 0, 7, 27),
                       ::testing::Values(0, 77, 256)));

// --- slice invariance (the Hinch `slice` contract) --------------------------

TEST(SliceInvariance, AllKernelsReproduceFullRangeRun) {
  const int w = 53, h = 37;
  FramePtr src = synth_gray(400, w, h);
  for (int slices : {1, 2, 3, 7, h}) {
    for (int k : {3, 5}) {
      Frame full(PixelFormat::kGray, w, h), sliced(PixelFormat::kGray, w, h);
      expect_slice_invariant(
          h, slices,
          [&](Frame& d, int r0, int r1) {
            media::blur_h(src->plane(0), d.plane(0), k, r0, r1);
          },
          full, sliced);
      expect_slice_invariant(
          h, slices,
          [&](Frame& d, int r0, int r1) {
            media::blur_v(src->plane(0), d.plane(0), k, r0, r1);
          },
          full, sliced);
    }
    for (int factor : {1, 2, 3}) {
      int dw = w / factor, dh = h / factor;
      Frame full(PixelFormat::kGray, dw, dh),
          sliced(PixelFormat::kGray, dw, dh);
      expect_slice_invariant(
          dh, std::min(slices, dh),
          [&](Frame& d, int r0, int r1) {
            media::downscale_box(src->plane(0), d.plane(0), factor, r0, r1);
          },
          full, sliced);
    }
    {
      FramePtr bg = synth_gray(401, w, h);
      Frame full(PixelFormat::kGray, w, h), sliced(PixelFormat::kGray, w, h);
      auto reset = [&](Frame& d) {
        media::copy_plane(bg->plane(0), d.plane(0), 0, h);
      };
      reset(full);
      reset(sliced);
      expect_slice_invariant(
          h, slices,
          [&](Frame& d, int r0, int r1) {
            media::downscale_blend(src->plane(0), d.plane(0), 2, 5, 3, 128,
                                   r0, r1);
          },
          full, sliced);
    }
  }
}

// --- fused-loop kernels vs their compositions --------------------------------
//
// The fuse-kernels pass swaps component chains for these fused loops,
// so each must be bit-identical to the composition it replaces — over
// ragged sizes, any slice partition, and (for the IDCT) both impls.

TEST(FusedBlurHv, MatchesTwoPassComposition) {
  for (auto [w, h] :
       {std::make_tuple(1, 1), std::make_tuple(3, 5), std::make_tuple(5, 4),
        std::make_tuple(17, 9), std::make_tuple(31, 7),
        std::make_tuple(64, 48), std::make_tuple(65, 47),
        std::make_tuple(127, 33)}) {
    FramePtr src = synth_gray(900 + static_cast<uint64_t>(w), w, h);
    for (int k : {3, 5}) {
      Frame mid(PixelFormat::kGray, w, h), ref(PixelFormat::kGray, w, h),
          opt(PixelFormat::kGray, w, h);
      media::blur_h(src->plane(0), mid.plane(0), k, 0, h);
      media::blur_v(mid.plane(0), ref.plane(0), k, 0, h);
      media::blur_hv(src->plane(0), opt.plane(0), k, 0, h);
      EXPECT_TRUE(ref.equals(opt)) << "k=" << k << " " << w << "x" << h;
    }
  }
}

TEST(FusedBlurHv, SliceInvariant) {
  // Any row partition must reproduce the full run: the ring's halo
  // recomputation at slice boundaries has to match the 2-pass borders.
  const int w = 53, h = 37;
  FramePtr src = synth_gray(910, w, h);
  for (int slices : {1, 2, 3, 7, h}) {
    for (int k : {3, 5}) {
      Frame full(PixelFormat::kGray, w, h), sliced(PixelFormat::kGray, w, h);
      expect_slice_invariant(
          h, slices,
          [&](Frame& d, int r0, int r1) {
            media::blur_hv(src->plane(0), d.plane(0), k, r0, r1);
          },
          full, sliced);
    }
  }
}

TEST(FusedIdctDownscale, MatchesCompositionBothImpls) {
  media::SynthSpec spec{.seed = 920, .width = 88, .height = 56,
                        .format = PixelFormat::kGray};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 0), 80);
  ASSERT_TRUE(bytes.is_ok());
  auto coeffs = media::jpeg::decode_to_coefficients(bytes.value().data(),
                                                    bytes.value().size());
  ASSERT_TRUE(coeffs.is_ok());
  const media::jpeg::CoeffPlane& y = coeffs.value().comps[0];
  for (auto impl : {media::jpeg::IdctImpl::kFixedPoint,
                    media::jpeg::IdctImpl::kFloatReference}) {
    Frame full(PixelFormat::kGray, y.width, y.height);
    media::jpeg::idct_component(y, full.plane(0), 0, y.blocks_h, impl);
    for (int factor : {1, 2, 3, 4}) {
      const int ow = y.width / factor, oh = y.height / factor;
      Frame ref(PixelFormat::kGray, ow, oh), opt(PixelFormat::kGray, ow, oh);
      media::downscale_box(full.plane(0), ref.plane(0), factor, 0, oh);
      media::jpeg::idct_downscale(y, opt.plane(0), factor, 0, oh, impl);
      EXPECT_TRUE(ref.equals(opt)) << "factor=" << factor << " impl="
                                   << static_cast<int>(impl);
    }
  }
}

TEST(FusedIdctDownscale, SliceInvariant) {
  // Strips align to the lcm(8, factor) grid, so any destination-row
  // partition — including single rows — must be bit-identical to the
  // whole run.
  media::SynthSpec spec{.seed = 921, .width = 96, .height = 72,
                        .format = PixelFormat::kGray};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 1), 85);
  ASSERT_TRUE(bytes.is_ok());
  auto coeffs = media::jpeg::decode_to_coefficients(bytes.value().data(),
                                                    bytes.value().size());
  ASSERT_TRUE(coeffs.is_ok());
  const media::jpeg::CoeffPlane& y = coeffs.value().comps[0];
  for (int factor : {2, 3, 4}) {
    const int oh = y.height / factor;
    for (int slices : {2, 5, oh}) {
      Frame full(PixelFormat::kGray, y.width / factor, oh),
          sliced(PixelFormat::kGray, y.width / factor, oh);
      expect_slice_invariant(
          oh, slices,
          [&](Frame& d, int r0, int r1) {
            media::jpeg::idct_downscale(y, d.plane(0), factor, r0, r1);
          },
          full, sliced);
    }
  }
}

// --- Huffman engine equivalence ---------------------------------------------

TEST(HuffmanEngines, TableDrivenMatchesBitSerial) {
  for (auto [w, h, q, rst] :
       {std::make_tuple(64, 48, 75, 0), std::make_tuple(70, 50, 90, 0),
        std::make_tuple(17, 9, 50, 0), std::make_tuple(96, 80, 75, 3),
        std::make_tuple(128, 96, 95, 1), std::make_tuple(80, 64, 30, 8)}) {
    media::SynthSpec spec{.seed = static_cast<uint64_t>(500 + w), .width = w,
                          .height = h, .format = PixelFormat::kYuv420};
    FramePtr frame = media::make_synth_frame(spec, 1);
    auto bytes = media::jpeg::encode(*frame, q, rst);
    ASSERT_TRUE(bytes.is_ok());
    auto fast = media::jpeg::decode_to_coefficients(
        bytes.value().data(), bytes.value().size(),
        media::jpeg::HuffmanImpl::kLookupTable);
    auto ref = media::jpeg::decode_to_coefficients(
        bytes.value().data(), bytes.value().size(),
        media::jpeg::HuffmanImpl::kBitSerial);
    ASSERT_TRUE(fast.is_ok()) << fast.status().to_string();
    ASSERT_TRUE(ref.is_ok()) << ref.status().to_string();
    const auto& a = fast.value();
    const auto& b = ref.value();
    EXPECT_EQ(a.nonzero_coeffs, b.nonzero_coeffs);
    ASSERT_EQ(a.comps.size(), b.comps.size());
    for (size_t c = 0; c < a.comps.size(); ++c) {
      ASSERT_EQ(a.comps[c].blocks.size(), b.comps[c].blocks.size());
      EXPECT_TRUE(std::equal(a.comps[c].blocks.begin(),
                             a.comps[c].blocks.end(),
                             b.comps[c].blocks.begin()))
          << "component " << c << " " << w << "x" << h << " q=" << q
          << " rst=" << rst;
    }
  }
}

TEST(HuffmanEngines, BothRejectTruncationAtEveryPoint) {
  media::SynthSpec spec{.seed = 600, .width = 32, .height = 24,
                        .format = PixelFormat::kYuv420};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 0), 75, 2);
  ASSERT_TRUE(bytes.is_ok());
  const auto& full = bytes.value();
  // Chopping the stream anywhere must produce a clean error from both
  // engines, never a crash or a silently partial image.
  for (size_t len = 0; len < full.size(); ++len) {
    auto fast = media::jpeg::decode_to_coefficients(
        full.data(), len, media::jpeg::HuffmanImpl::kLookupTable);
    auto ref = media::jpeg::decode_to_coefficients(
        full.data(), len, media::jpeg::HuffmanImpl::kBitSerial);
    EXPECT_FALSE(fast.is_ok()) << "len=" << len;
    EXPECT_FALSE(ref.is_ok()) << "len=" << len;
  }
}

TEST(HuffmanEngines, LookupTableAgreesWithCanonicalWalk) {
  // Every kLookupBits-wide prefix either resolves to the same
  // (symbol, length) the canonical min/max-code walk finds, or is marked
  // as needing the slow path (code longer than kLookupBits).
  constexpr int kBits = media::jpeg::HuffDecodeTable::kLookupBits;
  for (auto spec : {media::jpeg::std_dc_luma(), media::jpeg::std_ac_luma(),
                    media::jpeg::std_dc_chroma(),
                    media::jpeg::std_ac_chroma()}) {
    auto t = media::jpeg::build_decode_table(spec.bits, spec.values,
                                             spec.value_count);
    ASSERT_TRUE(t.valid);
    for (int idx = 0; idx < (1 << kBits); ++idx) {
      // Canonical walk over the prefix bits.
      int sym = -1, len = -1;
      int32_t code = 0;
      for (int l = 1; l <= kBits; ++l) {
        code = (code << 1) | ((idx >> (kBits - l)) & 1);
        if (t.max_code[static_cast<size_t>(l)] >= 0 &&
            code <= t.max_code[static_cast<size_t>(l)]) {
          sym = t.values[static_cast<size_t>(
              t.val_ptr[static_cast<size_t>(l)] +
              (code - t.min_code[static_cast<size_t>(l)]))];
          len = l;
          break;
        }
      }
      uint16_t entry = t.lookup[static_cast<size_t>(idx)];
      if (sym < 0) {
        EXPECT_EQ(entry, 0) << "idx=" << idx;
      } else {
        ASSERT_NE(entry, 0) << "idx=" << idx;
        EXPECT_EQ(entry >> 8, len) << "idx=" << idx;
        EXPECT_EQ(entry & 0xff, sym) << "idx=" << idx;
      }
    }
  }
}

// --- fixed-point IDCT accuracy ----------------------------------------------

int float_ref_pixel(float v) {
  int p = static_cast<int>(std::lround(v)) + 128;
  return p < 0 ? 0 : (p > 255 ? 255 : p);
}

TEST(FixedIdct, WithinOneLsbOfFloatReference) {
  std::mt19937 rng(7);
  int max_err = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    int16_t in[64] = {};
    // Dense and sparse blocks across the full physically-plausible
    // dequantized coefficient range (|coef| <= ~1024 for 8-bit samples;
    // test well beyond it).
    int mode = trial % 4;
    int mag = mode == 0 ? 1023 : (mode == 1 ? 4095 : 256);
    std::uniform_int_distribution<int> d(-mag, mag);
    if (mode == 3) {
      std::uniform_int_distribution<int> pos(0, 63);
      for (int i = 0; i < 5; ++i) in[pos(rng)] = static_cast<int16_t>(d(rng));
    } else {
      for (int i = 0; i < 64; ++i) in[i] = static_cast<int16_t>(d(rng));
    }
    uint8_t fx[64];
    float fl[64];
    media::jpeg::idct_block_fixed(in, fx);
    media::jpeg::idct_block_float(in, fl);
    for (int i = 0; i < 64; ++i) {
      int err = std::abs(float_ref_pixel(fl[i]) - static_cast<int>(fx[i]));
      max_err = std::max(max_err, err);
      ASSERT_LE(err, 1) << "trial " << trial << " i=" << i;
    }
  }
  // The fixed-point path should be mostly exact, not just within 1.
  EXPECT_LE(max_err, 1);
}

TEST(FixedIdct, DcOnlyBlockIsFlat) {
  for (int dc : {-1024, -256, -8, 0, 8, 100, 1016}) {
    int16_t in[64] = {};
    in[0] = static_cast<int16_t>(dc);
    uint8_t fx[64];
    media::jpeg::idct_block_fixed(in, fx);
    for (int i = 1; i < 64; ++i) EXPECT_EQ(fx[i], fx[0]) << "dc=" << dc;
    float fl[64];
    media::jpeg::idct_block_float(in, fl);
    EXPECT_LE(std::abs(float_ref_pixel(fl[0]) - static_cast<int>(fx[0])), 1)
        << "dc=" << dc;
  }
}

TEST(FixedIdct, ComponentSliceInvariance) {
  // idct_component over any block-row partition reproduces the whole run,
  // for both IDCT implementations.
  media::SynthSpec spec{.seed = 700, .width = 88, .height = 56,
                        .format = PixelFormat::kGray};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 0), 80);
  ASSERT_TRUE(bytes.is_ok());
  auto coeffs = media::jpeg::decode_to_coefficients(bytes.value().data(),
                                                    bytes.value().size());
  ASSERT_TRUE(coeffs.is_ok());
  const media::jpeg::CoeffPlane& y = coeffs.value().comps[0];
  for (auto impl : {media::jpeg::IdctImpl::kFixedPoint,
                    media::jpeg::IdctImpl::kFloatReference}) {
    Frame whole(PixelFormat::kGray, y.width, y.height);
    media::jpeg::idct_component(y, whole.plane(0), 0, y.blocks_h, impl);
    Frame sliced(PixelFormat::kGray, y.width, y.height);
    for (int b = 0; b < y.blocks_h; ++b)
      media::jpeg::idct_component(y, sliced.plane(0), b, b + 1, impl);
    EXPECT_TRUE(whole.equals(sliced));
  }
}

TEST(FixedIdct, RoundTripPsnrMatchesFloatReference) {
  // Swapping the IDCT must not move encode->decode round-trip quality by
  // more than a token amount (the two decoders differ by at most 1 LSB
  // per pixel).
  media::SynthSpec spec{.seed = 701, .width = 128, .height = 96,
                        .format = PixelFormat::kYuv420};
  FramePtr original = media::make_synth_frame(spec, 2);
  auto bytes = media::jpeg::encode(*original, 85);
  ASSERT_TRUE(bytes.is_ok());
  auto coeffs = media::jpeg::decode_to_coefficients(bytes.value().data(),
                                                    bytes.value().size());
  ASSERT_TRUE(coeffs.is_ok());
  const media::jpeg::CoeffImage& img = coeffs.value();
  FramePtr fixed = media::make_frame(img.format, img.width, img.height);
  FramePtr fl = media::make_frame(img.format, img.width, img.height);
  for (int p = 0; p < 3; ++p) {
    const auto& cp = img.comps[static_cast<size_t>(p)];
    media::jpeg::idct_component(cp, fixed->plane(p), 0, cp.blocks_h,
                                media::jpeg::IdctImpl::kFixedPoint);
    media::jpeg::idct_component(cp, fl->plane(p), 0, cp.blocks_h,
                                media::jpeg::IdctImpl::kFloatReference);
  }
  double psnr_fixed = media::psnr(*original, *fixed);
  double psnr_float = media::psnr(*original, *fl);
  EXPECT_GT(psnr_fixed, 33.0);
  EXPECT_LT(std::abs(psnr_fixed - psnr_float), 0.1);
}

// --- vector tier bit-exactness ----------------------------------------------
//
// Every compiled-in vector tier must reproduce the scalar tier byte for
// byte — not within a tolerance — across ragged widths (SIMD tails),
// borders, every alpha, and the full coefficient range of the IDCT
// (including the overflow guard's scalar fallback above
// |coef| > 1536).

// RAII: pin a tier for one test, restore kAuto for everything after.
class DispatchGuard {
 public:
  explicit DispatchGuard(media::KernelDispatch d) {
    media::set_kernel_dispatch(d);
  }
  ~DispatchGuard() {
    media::set_kernel_dispatch(media::KernelDispatch::kAuto);
  }
};

std::vector<media::KernelDispatch> available_vector_tiers() {
  std::vector<media::KernelDispatch> out;
  for (auto d : {media::KernelDispatch::kSse2, media::KernelDispatch::kAvx2,
                 media::KernelDispatch::kNeon})
    if (media::kernel_dispatch_available(d)) out.push_back(d);
  return out;
}

constexpr int kRaggedWidths[] = {1, 2, 3, 5, 8, 15, 16, 17, 31, 33, 64, 127};

TEST(VectorTiers, DispatchStateIsSane) {
  EXPECT_TRUE(
      media::kernel_dispatch_available(media::KernelDispatch::kScalar));
  EXPECT_NE(media::active_kernel_dispatch(), media::KernelDispatch::kAuto);
  {
    DispatchGuard g(media::KernelDispatch::kScalar);
    EXPECT_EQ(media::active_kernel_dispatch(),
              media::KernelDispatch::kScalar);
  }
  EXPECT_EQ(media::kernel_dispatch(), media::KernelDispatch::kAuto);
  // Requesting an unavailable tier must run scalar, not crash.
  for (auto d : {media::KernelDispatch::kSse2, media::KernelDispatch::kAvx2,
                 media::KernelDispatch::kNeon}) {
    if (media::kernel_dispatch_available(d)) continue;
    DispatchGuard g(d);
    EXPECT_EQ(media::active_kernel_dispatch(),
              media::KernelDispatch::kScalar);
  }
}

TEST(VectorTiers, BlurBitExactAcrossRaggedWidths) {
  for (auto tier : available_vector_tiers()) {
    for (int w : kRaggedWidths) {
      const int h = 9;
      FramePtr src = synth_gray(800 + static_cast<uint64_t>(w), w, h);
      for (int k : {3, 5}) {
        Frame ref(PixelFormat::kGray, w, h), opt(PixelFormat::kGray, w, h);
        {
          DispatchGuard g(media::KernelDispatch::kScalar);
          media::blur_h(src->plane(0), ref.plane(0), k, 0, h);
        }
        {
          DispatchGuard g(tier);
          media::blur_h(src->plane(0), opt.plane(0), k, 0, h);
        }
        EXPECT_TRUE(ref.equals(opt))
            << media::kernel_dispatch_name(tier) << " blur_h k=" << k
            << " w=" << w;
        {
          DispatchGuard g(media::KernelDispatch::kScalar);
          media::blur_v(src->plane(0), ref.plane(0), k, 0, h);
        }
        {
          DispatchGuard g(tier);
          media::blur_v(src->plane(0), opt.plane(0), k, 0, h);
        }
        EXPECT_TRUE(ref.equals(opt))
            << media::kernel_dispatch_name(tier) << " blur_v k=" << k
            << " w=" << w;
      }
    }
  }
}

TEST(VectorTiers, DownscaleBitExactAcrossRaggedWidths) {
  for (auto tier : available_vector_tiers()) {
    for (int w : kRaggedWidths) {
      const int h = 12;
      FramePtr src = synth_gray(820 + static_cast<uint64_t>(w), w, h);
      for (int factor : {2, 4}) {
        int dw = w / factor, dh = h / factor;
        if (dw == 0 || dh == 0) continue;
        Frame ref(PixelFormat::kGray, dw, dh),
            opt(PixelFormat::kGray, dw, dh);
        {
          DispatchGuard g(media::KernelDispatch::kScalar);
          media::downscale_box(src->plane(0), ref.plane(0), factor, 0, dh);
        }
        {
          DispatchGuard g(tier);
          media::downscale_box(src->plane(0), opt.plane(0), factor, 0, dh);
        }
        EXPECT_TRUE(ref.equals(opt))
            << media::kernel_dispatch_name(tier) << " factor=" << factor
            << " w=" << w;
      }
    }
  }
}

TEST(VectorTiers, BlendBitExactAcrossAlphasAndOffsets) {
  for (auto tier : available_vector_tiers()) {
    for (int w : kRaggedWidths) {
      FramePtr fg = synth_gray(840 + static_cast<uint64_t>(w), w, 7);
      FramePtr canvas = synth_gray(841, 131, 17);
      for (int alpha : {0, 7, 128, 255, 256}) {
        for (int dx : {-3, 0, 2, 100}) {
          FramePtr ref = canvas->clone();
          FramePtr opt = canvas->clone();
          {
            DispatchGuard g(media::KernelDispatch::kScalar);
            media::blend(fg->plane(0), ref->plane(0), dx, 3, alpha, 0, 17);
          }
          {
            DispatchGuard g(tier);
            media::blend(fg->plane(0), opt->plane(0), dx, 3, alpha, 0, 17);
          }
          EXPECT_TRUE(ref->equals(*opt))
              << media::kernel_dispatch_name(tier) << " w=" << w
              << " alpha=" << alpha << " dx=" << dx;
        }
      }
    }
  }
}

TEST(VectorTiers, FusedDownscaleBlendBitExact) {
  for (auto tier : available_vector_tiers()) {
    for (int w : kRaggedWidths) {
      FramePtr src = synth_gray(860 + static_cast<uint64_t>(w), w * 2, 14);
      FramePtr canvas = synth_gray(861, 131, 17);
      for (int alpha : {0, 7, 128, 255, 256}) {
        FramePtr ref = canvas->clone();
        FramePtr opt = canvas->clone();
        {
          DispatchGuard g(media::KernelDispatch::kScalar);
          media::downscale_blend(src->plane(0), ref->plane(0), 2, 1, 2,
                                 alpha, 0, 17);
        }
        {
          DispatchGuard g(tier);
          media::downscale_blend(src->plane(0), opt->plane(0), 2, 1, 2,
                                 alpha, 0, 17);
        }
        EXPECT_TRUE(ref->equals(*opt))
            << media::kernel_dispatch_name(tier) << " w=" << w
            << " alpha=" << alpha;
      }
    }
  }
}

TEST(VectorTiers, IdctBitExactIncludingOverflowGuard) {
  std::mt19937 rng(41);
  for (auto tier : available_vector_tiers()) {
    for (int trial = 0; trial < 2000; ++trial) {
      int16_t in[64] = {};
      // Magnitude tiers: the physically plausible range, the exact guard
      // boundary, and far beyond it (forces the in-kernel scalar
      // fallback) — plus sparse blocks, including the shapes the vector
      // kernels special-case (zero rows 4-7, zero columns 4-7, and
      // their top-left-quadrant intersection).
      int mode = trial % 7;
      int mag = mode == 0 ? 1023 : (mode == 1 ? 1536 : 32767);
      std::uniform_int_distribution<int> d(-mag, mag);
      std::uniform_int_distribution<int> dv(-1536, 1536);
      if (mode == 3) {
        std::uniform_int_distribution<int> pos(0, 63);
        for (int i = 0; i < 6; ++i)
          in[pos(rng)] = static_cast<int16_t>(dv(rng));
      } else if (mode == 4) {  // rows 4-7 zero
        for (int i = 0; i < 32; ++i) in[i] = static_cast<int16_t>(dv(rng));
      } else if (mode == 5) {  // columns 4-7 zero
        for (int y = 0; y < 8; ++y)
          for (int x = 0; x < 4; ++x)
            in[y * 8 + x] = static_cast<int16_t>(dv(rng));
      } else if (mode == 6) {  // top-left 4x4 quadrant only
        for (int y = 0; y < 4; ++y)
          for (int x = 0; x < 4; ++x)
            in[y * 8 + x] = static_cast<int16_t>(dv(rng));
      } else {
        for (int i = 0; i < 64; ++i) in[i] = static_cast<int16_t>(d(rng));
      }
      uint8_t ref[64], opt[64];
      {
        DispatchGuard g(media::KernelDispatch::kScalar);
        media::jpeg::idct_block_fixed(in, ref);
      }
      {
        DispatchGuard g(tier);
        media::jpeg::idct_block_fixed(in, opt);
      }
      for (int i = 0; i < 64; ++i)
        ASSERT_EQ(ref[i], opt[i])
            << media::kernel_dispatch_name(tier) << " trial " << trial
            << " i=" << i;
    }
  }
}

TEST(VectorTiers, FullDecodeBitExactVsScalar) {
  // End to end: a real decode (entropy + IDCT over every plane) must not
  // move a single pixel between tiers.
  media::SynthSpec spec{.seed = 900, .width = 136, .height = 104,
                        .format = PixelFormat::kYuv420};
  auto bytes = media::jpeg::encode(*media::make_synth_frame(spec, 1), 85);
  ASSERT_TRUE(bytes.is_ok());
  FramePtr ref;
  {
    DispatchGuard g(media::KernelDispatch::kScalar);
    auto r = media::jpeg::decode(bytes.value().data(), bytes.value().size());
    ASSERT_TRUE(r.is_ok());
    ref = std::move(r).take();
  }
  for (auto tier : available_vector_tiers()) {
    DispatchGuard g(tier);
    auto r = media::jpeg::decode(bytes.value().data(), bytes.value().size());
    ASSERT_TRUE(r.is_ok());
    EXPECT_TRUE(ref->equals(*r.value()))
        << media::kernel_dispatch_name(tier);
  }
}

}  // namespace
