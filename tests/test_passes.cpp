// The SP-IR pass pipeline: normalize / strip-dead-options semantics,
// PassManager verification and dump hooks, pass registry lookup, the
// auto-group fusion pass, and the perf cost model arbitrating it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "perf/fusion.hpp"
#include "sp/fuse.hpp"
#include "sp/fuse_kernels.hpp"
#include "sp/graph.hpp"
#include "sp/pass.hpp"
#include "sp/validate.hpp"

namespace {

using sp::EventAction;
using sp::EventRule;
using sp::LeafSpec;
using sp::NodeKind;
using sp::NodePtr;
using sp::ParShape;

LeafSpec leaf(const std::string& name, const std::string& in = "",
              const std::string& out = "") {
  LeafSpec spec;
  spec.instance = name;
  spec.klass = "k_" + name;
  if (!in.empty()) spec.inputs.push_back({"in", in});
  if (!out.empty()) spec.outputs.push_back({"out", out});
  return spec;
}

NodePtr simple_chain() {
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("src", "", "a")));
  steps.push_back(sp::make_leaf(leaf("mid", "a", "b")));
  steps.push_back(sp::make_leaf(leaf("sink", "b", "")));
  return sp::make_seq(std::move(steps));
}

std::vector<std::string> leaf_names(const sp::Node& root) {
  std::vector<std::string> out;
  for (const sp::Node* l : sp::collect_leaves(root))
    out.push_back(l->leaf.instance);
  return out;
}

// Runs a pipeline with exactly the given switches (everything else off).
NodePtr run_pipeline(NodePtr g, const sp::PassOptions& options) {
  auto res = sp::make_pipeline(options).run(std::move(g));
  EXPECT_TRUE(res.is_ok()) << res.status().to_string();
  return res.is_ok() ? std::move(res).take() : nullptr;
}

// --- normalize ----------------------------------------------------------------

TEST(NormalizePass, FlattensNestedSeqs) {
  // seq( seq(src, mid), seq(sink) ) -> seq(src, mid, sink)
  std::vector<NodePtr> inner1;
  inner1.push_back(sp::make_leaf(leaf("src", "", "a")));
  inner1.push_back(sp::make_leaf(leaf("mid", "a", "b")));
  std::vector<NodePtr> inner2;
  inner2.push_back(sp::make_leaf(leaf("sink", "b", "")));
  std::vector<NodePtr> outer;
  outer.push_back(sp::make_seq(std::move(inner1)));
  outer.push_back(sp::make_seq(std::move(inner2)));
  NodePtr root = sp::make_seq(std::move(outer));

  std::vector<std::string> before = leaf_names(*root);
  sp::PassOptions only_normalize = sp::PassOptions::none();
  only_normalize.normalize = true;
  root = run_pipeline(std::move(root), only_normalize);
  ASSERT_TRUE(root);

  EXPECT_EQ(root->kind(), NodeKind::kSeq);
  ASSERT_EQ(root->children.size(), 3u);
  for (const NodePtr& c : root->children)
    EXPECT_EQ(c->kind(), NodeKind::kLeaf);
  // Task ids/labels are assigned in depth-first leaf order, so the same
  // order means the same task DAG.
  EXPECT_EQ(leaf_names(*root), before);
  EXPECT_TRUE(sp::validate(*root).is_ok());
}

TEST(NormalizePass, FlattensBottomUpThroughDeepNesting) {
  // seq(seq(seq(src)), mid, seq(sink)) -> one flat 3-step seq.
  std::vector<NodePtr> s0;
  s0.push_back(sp::make_leaf(leaf("src", "", "a")));
  std::vector<NodePtr> s1;
  s1.push_back(sp::make_seq(std::move(s0)));
  std::vector<NodePtr> s2;
  s2.push_back(sp::make_seq(std::move(s1)));
  s2.push_back(sp::make_leaf(leaf("mid", "a", "b")));
  std::vector<NodePtr> s3;
  s3.push_back(sp::make_leaf(leaf("sink", "b", "")));
  s2.push_back(sp::make_seq(std::move(s3)));
  NodePtr root = sp::make_seq(std::move(s2));

  sp::PassOptions only_normalize = sp::PassOptions::none();
  only_normalize.normalize = true;
  root = run_pipeline(std::move(root), only_normalize);
  ASSERT_TRUE(root);
  ASSERT_EQ(root->children.size(), 3u);
  EXPECT_EQ(sp::stats(*root).seq_nodes, 1);
}

// --- strip-dead-options -------------------------------------------------------

TEST(StripDeadOptionsPass, KeepsRuleReferencedDropsDeadSplicesEnabled) {
  // Manager toggles "kept"; "dead" (disabled) and "gone" (enabled) have
  // no rule. After the pass: kept survives as an option, dead's subtree
  // vanishes, gone's body is spliced in unguarded.
  std::vector<NodePtr> body;
  body.push_back(sp::make_option("kept", true,
                                 sp::make_leaf(leaf("x", "", "a"))));
  body.push_back(sp::make_option("dead", false,
                                 sp::make_leaf(leaf("d", "", "junk"))));
  body.push_back(sp::make_option("gone", true,
                                 sp::make_leaf(leaf("g", "", "b"))));
  NodePtr mgr = sp::make_manager(
      "m", "q", {EventRule{"e", EventAction::kToggle, "kept", ""}},
      sp::make_seq(std::move(body)));
  std::vector<NodePtr> steps;
  steps.push_back(std::move(mgr));
  steps.push_back(sp::make_leaf(leaf("sink_a", "a", "")));
  steps.push_back(sp::make_leaf(leaf("sink_b", "b", "")));
  NodePtr root = sp::make_seq(std::move(steps));
  ASSERT_TRUE(sp::validate(*root).is_ok());

  sp::PassOptions only_strip = sp::PassOptions::none();
  only_strip.strip_dead_options = true;
  root = run_pipeline(std::move(root), only_strip);
  ASSERT_TRUE(root);

  std::vector<std::string> options;
  bool saw_d = false, saw_g = false;
  sp::visit(*root, [&](const sp::Node& n) {
    if (n.kind() == NodeKind::kOption) options.push_back(n.option_name);
    if (n.kind() == NodeKind::kLeaf && n.leaf.instance == "d") saw_d = true;
    if (n.kind() == NodeKind::kLeaf && n.leaf.instance == "g") saw_g = true;
  });
  EXPECT_EQ(options, std::vector<std::string>{"kept"});
  EXPECT_FALSE(saw_d);  // disabled + unreferenced: removed with subtree
  EXPECT_TRUE(saw_g);   // enabled + unreferenced: body kept, guard gone
  EXPECT_TRUE(sp::validate(*root).is_ok())
      << sp::validate(*root).to_string();
}

TEST(StripDeadOptionsPass, CascadeDeletesEmptiedParents) {
  // A seq step holding only a dead disabled option disappears entirely.
  std::vector<NodePtr> inner;
  inner.push_back(sp::make_option("dead", false,
                                  sp::make_leaf(leaf("d", "", "junk"))));
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_seq(std::move(inner)));
  steps.push_back(sp::make_leaf(leaf("src", "", "a")));
  steps.push_back(sp::make_leaf(leaf("sink", "a", "")));
  NodePtr root = sp::make_seq(std::move(steps));

  sp::PassOptions only_strip = sp::PassOptions::none();
  only_strip.strip_dead_options = true;
  root = run_pipeline(std::move(root), only_strip);
  ASSERT_TRUE(root);
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(leaf_names(*root), (std::vector<std::string>{"src", "sink"}));
}

// --- PassManager --------------------------------------------------------------

TEST(PassManager, VerifyCatchesPassThatBreaksTheGraph) {
  sp::PassManager pm;
  pm.set_verify(true);
  sp::Pass bad;
  bad.name = "clobber";
  bad.description = "replaces the graph with a duplicate-instance one";
  bad.run = [](NodePtr) -> support::Result<NodePtr> {
    std::vector<NodePtr> steps;
    steps.push_back(sp::make_leaf(leaf("x", "", "a")));
    steps.push_back(sp::make_leaf(leaf("x", "a", "")));
    return sp::make_seq(std::move(steps));
  };
  pm.add(std::move(bad));

  auto res = pm.run(simple_chain());
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), support::Code::kInternal);
  EXPECT_NE(res.status().message().find("clobber"), std::string::npos)
      << res.status().message();
}

TEST(PassManager, VerifySkippedWhenInputAlreadyInvalid) {
  // The pipeline is not the validator: a graph that does not validate
  // going in (option outside a manager) passes through verification
  // untouched so hinch-level rejection tests keep their error codes.
  sp::PassManager pm;
  pm.set_verify(true);
  pm.add(sp::normalize_pass());
  NodePtr invalid = sp::make_option("opt", true,
                                    sp::make_leaf(leaf("x", "", "a")));
  auto res = pm.run(std::move(invalid));
  EXPECT_TRUE(res.is_ok()) << res.status().to_string();
}

TEST(PassManager, ErrorsNameTheFailingPass) {
  sp::PassManager pm;
  sp::Pass failing;
  failing.name = "explode";
  failing.description = "always fails";
  failing.run = [](NodePtr) -> support::Result<NodePtr> {
    return support::invalid_argument("boom");
  };
  pm.add(std::move(failing));
  auto res = pm.run(simple_chain());
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), support::Code::kInvalidArgument);
  EXPECT_NE(res.status().message().find("explode"), std::string::npos);
  EXPECT_NE(res.status().message().find("boom"), std::string::npos);
}

TEST(PassManager, DumpHookFiresAfterEveryPassInOrder) {
  sp::PassOptions options;  // default build pipeline
  sp::PassManager pm = sp::make_pipeline(options);
  std::vector<std::string> seen;
  pm.set_dump_hook([&](const std::string& pass, const sp::Node& g) {
    seen.push_back(pass);
    EXPECT_GT(sp::stats(g).leaves, 0);
  });
  auto res = pm.run(simple_chain());
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  EXPECT_EQ(seen,
            (std::vector<std::string>{"normalize", "strip-dead-options"}));
}

TEST(PassRegistry, RegisteredPassesInCanonicalOrder) {
  const std::vector<sp::PassInfo>& passes = sp::registered_passes();
  ASSERT_EQ(passes.size(), 5u);
  EXPECT_EQ(passes[0].name, "normalize");
  EXPECT_TRUE(passes[0].default_on);
  EXPECT_EQ(passes[1].name, "strip-dead-options");
  EXPECT_TRUE(passes[1].default_on);
  EXPECT_EQ(passes[2].name, "to-sp-form");
  EXPECT_FALSE(passes[2].default_on);
  EXPECT_EQ(passes[3].name, "auto-group");
  EXPECT_FALSE(passes[3].default_on);
  EXPECT_EQ(passes[4].name, "fuse-kernels");
  EXPECT_FALSE(passes[4].default_on);
}

TEST(PassRegistry, UnknownPassNameListsTheRegisteredOnes) {
  auto res = sp::pass_by_name("bogus", sp::PassOptions());
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), support::Code::kNotFound);
  EXPECT_NE(res.status().message().find("normalize"), std::string::npos);
  EXPECT_NE(res.status().message().find("auto-group"), std::string::npos);
}

TEST(PassRegistry, EveryRegisteredNameResolves) {
  for (const sp::PassInfo& info : sp::registered_passes()) {
    auto res = sp::pass_by_name(info.name, sp::PassOptions());
    ASSERT_TRUE(res.is_ok()) << info.name;
    EXPECT_EQ(res.value().name, info.name);
  }
}

// --- auto-group ---------------------------------------------------------------

sp::PassOptions auto_group_only(sp::FusionAdvisor advisor = {}) {
  sp::PassOptions o = sp::PassOptions::none();
  o.auto_group = true;
  o.advisor = std::move(advisor);
  return o;
}

int count_groups(const sp::Node& root) {
  int groups = 0;
  sp::visit(root, [&](const sp::Node& n) {
    if (n.kind() == NodeKind::kGroup) ++groups;
  });
  return groups;
}

TEST(AutoGroupPass, FusesStreamConnectedChainWithEmptyAdvisor) {
  NodePtr root = run_pipeline(simple_chain(), auto_group_only());
  ASSERT_TRUE(root);
  ASSERT_EQ(root->children.size(), 1u);
  const sp::Node& group = *root->children[0];
  ASSERT_EQ(group.kind(), NodeKind::kGroup);
  EXPECT_EQ(leaf_names(group),
            (std::vector<std::string>{"src", "mid", "sink"}));
  EXPECT_TRUE(sp::validate(*root).is_ok())
      << sp::validate(*root).to_string();
}

TEST(AutoGroupPass, DecliningAdvisorLeavesGraphUnfused) {
  NodePtr root = run_pipeline(
      simple_chain(),
      auto_group_only([](const sp::FusionCandidate&) { return false; }));
  ASSERT_TRUE(root);
  EXPECT_EQ(count_groups(*root), 0);
  EXPECT_EQ(root->children.size(), 3u);
}

TEST(AutoGroupPass, UnconnectedStepsDoNotFuse) {
  // Two independent producer/consumer pairs interleaved so no adjacent
  // steps are stream-connected: nothing to fuse even when the advisor
  // approves everything.
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("src1", "", "a")));
  steps.push_back(sp::make_leaf(leaf("src2", "", "b")));
  steps.push_back(sp::make_leaf(leaf("sink1", "a", "")));
  NodePtr root = sp::make_seq(std::move(steps));
  root = run_pipeline(std::move(root), auto_group_only());
  ASSERT_TRUE(root);
  // src2 reads nothing src1 wrote, so the run from src1 stops there;
  // sink1 does read src1's "a" but is no longer adjacent to a run
  // containing it. Fusion is strictly over neighbouring steps.
  EXPECT_EQ(count_groups(*root), 0);
}

TEST(AutoGroupPass, OptionStepsBreakRuns) {
  // manager(option(...)) between producer and consumer: not fusible, so
  // no run can span it.
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("src", "", "a")));
  NodePtr opt = sp::make_option("extra", true,
                                sp::make_leaf(leaf("fx", "a", "b")));
  steps.push_back(sp::make_manager(
      "m", "q", {EventRule{"e", EventAction::kToggle, "extra", ""}},
      std::move(opt)));
  steps.push_back(sp::make_leaf(leaf("sink", "b", "")));
  NodePtr root = sp::make_seq(std::move(steps));
  ASSERT_TRUE(sp::validate(*root).is_ok());
  root = run_pipeline(std::move(root), auto_group_only());
  ASSERT_TRUE(root);
  EXPECT_EQ(count_groups(*root), 0);
  EXPECT_EQ(root->children.size(), 3u);
}

TEST(AutoGroupPass, CandidateReportsLinksAndLostReplicas) {
  // src -> slice-par(4){work} -> sink. The advisor must see the linking
  // stream and the slicing the fusion would forfeit.
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("src", "", "a")));
  std::vector<NodePtr> block;
  block.push_back(sp::make_leaf(leaf("work", "a", "b")));
  std::vector<NodePtr> parblocks;
  parblocks.push_back(sp::make_seq(std::move(block)));
  steps.push_back(sp::make_par(ParShape::kSlice, 4, std::move(parblocks)));
  steps.push_back(sp::make_leaf(leaf("sink", "b", "")));
  NodePtr root = sp::make_seq(std::move(steps));

  struct Seen {
    std::vector<std::string> links;
    int lost_replicas;
    size_t run_size;
    size_t step_size;
  };
  std::vector<Seen> candidates;
  root = run_pipeline(
      std::move(root),
      auto_group_only([&](const sp::FusionCandidate& c) {
        candidates.push_back(Seen{c.link_streams, c.lost_replicas,
                                  c.run_leaves.size(),
                                  c.step_leaves.size()});
        return true;
      }));
  ASSERT_TRUE(root);

  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].links, std::vector<std::string>{"a"});
  EXPECT_EQ(candidates[0].lost_replicas, 4);
  EXPECT_EQ(candidates[0].run_size, 1u);
  EXPECT_EQ(candidates[0].step_size, 1u);
  EXPECT_EQ(candidates[1].links, std::vector<std::string>{"b"});
  EXPECT_EQ(candidates[1].lost_replicas, 4);
  EXPECT_EQ(candidates[1].run_size, 2u);

  EXPECT_EQ(count_groups(*root), 1);
  EXPECT_EQ(leaf_names(*root),
            (std::vector<std::string>{"src", "work", "sink"}));
}

TEST(AutoGroupPass, FusesInsideParblockBodies) {
  // A chain nested inside a task-par parblock gets its own fusion; the
  // sibling parblock (a single step) is left alone.
  std::vector<NodePtr> inner;
  inner.push_back(sp::make_leaf(leaf("p_src", "", "x")));
  inner.push_back(sp::make_leaf(leaf("p_sink", "x", "")));
  std::vector<NodePtr> other;
  other.push_back(sp::make_leaf(leaf("lone", "", "y")));
  std::vector<NodePtr> parblocks;
  parblocks.push_back(sp::make_seq(std::move(inner)));
  parblocks.push_back(sp::make_seq(std::move(other)));
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_par(ParShape::kTask, 1, std::move(parblocks)));
  NodePtr root = sp::make_seq(std::move(steps));
  ASSERT_TRUE(sp::validate(*root).is_ok());

  root = run_pipeline(std::move(root), auto_group_only());
  ASSERT_TRUE(root);
  EXPECT_EQ(count_groups(*root), 1);
  const sp::Node& par = *root->children[0];
  ASSERT_EQ(par.kind(), NodeKind::kPar);
  ASSERT_EQ(par.children[0]->children.size(), 1u);
  EXPECT_EQ(par.children[0]->children[0]->kind(), NodeKind::kGroup);
  EXPECT_TRUE(sp::validate(*root).is_ok());
}

// --- fuse-kernels -------------------------------------------------------------

// A registry with one fusible chain, k_mid -> k_sink: the fused leaf
// takes mid's inputs and sink's outputs and drops the internal link.
sp::KernelFusionRegistry mid_sink_registry(bool slice_preserving = false,
                                           bool rewrite_fails = false) {
  sp::KernelFusionRegistry reg;
  sp::KernelFusionPattern p;
  p.name = "mid_sink";
  p.klasses = {"k_mid", "k_sink"};
  p.slice_preserving = slice_preserving;
  p.rewrite = [rewrite_fails](const std::vector<const sp::LeafSpec*>& chain)
      -> support::Result<LeafSpec> {
    if (rewrite_fails)
      return support::invalid_argument("unsupported parameters");
    LeafSpec fused;
    fused.instance = chain.front()->instance + "+" + chain.back()->instance;
    fused.klass = "k_fused";
    fused.inputs = chain.front()->inputs;
    fused.outputs = chain.back()->outputs;
    return fused;
  };
  reg.add(std::move(p));
  return reg;
}

sp::PassOptions fuse_kernels_only(const sp::KernelFusionRegistry& reg,
                                  sp::FusionAdvisor advisor = {}) {
  sp::PassOptions o = sp::PassOptions::none();
  o.fuse_kernels = true;
  o.kernel_patterns = &reg;
  o.kernel_advisor = std::move(advisor);
  return o;
}

TEST(FuseKernelsPass, RewritesAdjacentSeqStepsAndAnnotates) {
  sp::KernelFusionRegistry reg = mid_sink_registry();
  NodePtr root = run_pipeline(simple_chain(), fuse_kernels_only(reg));
  ASSERT_TRUE(root);
  // seq(src, mid, sink) -> seq(src, mid+sink); the "b" link is gone.
  ASSERT_EQ(root->children.size(), 2u);
  const sp::Node& fused = *root->children[1];
  ASSERT_EQ(fused.kind(), NodeKind::kLeaf);
  EXPECT_EQ(fused.leaf.klass, "k_fused");
  EXPECT_EQ(fused.leaf.fused_pattern, "mid_sink");
  EXPECT_EQ(fused.leaf.fused_from,
            (std::vector<std::string>{"mid", "sink"}));
  bool saw_b = false;
  sp::visit(*root, [&](const sp::Node& n) {
    if (n.kind() != NodeKind::kLeaf) return;
    for (const auto& b : n.leaf.inputs) saw_b |= b.stream == "b";
    for (const auto& b : n.leaf.outputs) saw_b |= b.stream == "b";
  });
  EXPECT_FALSE(saw_b);
  EXPECT_TRUE(sp::validate(*root).is_ok())
      << sp::validate(*root).to_string();
}

TEST(FuseKernelsPass, RewritesPatternInsideAutoGroupedRun) {
  // auto-group first fuses the whole chain into one kGroup; the kernel
  // matcher must still find the k_mid -> k_sink subsequence among the
  // group members and rewrite just those two.
  sp::KernelFusionRegistry reg = mid_sink_registry();
  sp::PassOptions o = fuse_kernels_only(reg);
  o.auto_group = true;
  NodePtr root = run_pipeline(simple_chain(), o);
  ASSERT_TRUE(root);
  ASSERT_EQ(root->children.size(), 1u);
  const sp::Node& group = *root->children[0];
  ASSERT_EQ(group.kind(), NodeKind::kGroup);
  ASSERT_EQ(group.children.size(), 2u);
  EXPECT_EQ(group.children[0]->leaf.instance, "src");
  EXPECT_EQ(group.children[1]->leaf.fused_pattern, "mid_sink");
  EXPECT_TRUE(sp::validate(*root).is_ok());
}

TEST(FuseKernelsPass, MultipleReadersOnLinkStreamDecline) {
  // A spy also reads the internal "b" link: eliding the packet would
  // starve it, so the rewrite must be declined and the graph unchanged.
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("src", "", "a")));
  steps.push_back(sp::make_leaf(leaf("mid", "a", "b")));
  steps.push_back(sp::make_leaf(leaf("sink", "b", "")));
  steps.push_back(sp::make_leaf(leaf("spy", "b", "")));
  NodePtr root = sp::make_seq(std::move(steps));
  ASSERT_TRUE(sp::validate(*root).is_ok());
  sp::KernelFusionRegistry reg = mid_sink_registry();
  root = run_pipeline(std::move(root), fuse_kernels_only(reg));
  ASSERT_TRUE(root);
  EXPECT_EQ(leaf_names(*root),
            (std::vector<std::string>{"src", "mid", "sink", "spy"}));
}

TEST(FuseKernelsPass, DecliningAdvisorLeavesChain) {
  sp::KernelFusionRegistry reg = mid_sink_registry();
  NodePtr root = run_pipeline(
      simple_chain(),
      fuse_kernels_only(reg,
                        [](const sp::FusionCandidate&) { return false; }));
  ASSERT_TRUE(root);
  EXPECT_EQ(leaf_names(*root),
            (std::vector<std::string>{"src", "mid", "sink"}));
}

TEST(FuseKernelsPass, RewriteErrorDeclinesSilently) {
  // The rewrite hook rejecting a parameter combination is not a pipeline
  // failure — the candidate is skipped and the chain kept as-is.
  sp::KernelFusionRegistry reg =
      mid_sink_registry(/*slice_preserving=*/false, /*rewrite_fails=*/true);
  NodePtr root = run_pipeline(simple_chain(), fuse_kernels_only(reg));
  ASSERT_TRUE(root);
  EXPECT_EQ(leaf_names(*root),
            (std::vector<std::string>{"src", "mid", "sink"}));
}

TEST(FuseKernelsPass, SlicePreservingPatternKeepsReplication) {
  // par-slice(3){mid} -> par-slice(3){sink} with a slice-preserving
  // pattern: the fused leaf keeps the par-slice(3) wrapper and the
  // advisor sees lost_replicas == 1 (nothing forfeited).
  auto sliced_step = [](LeafSpec spec) {
    std::vector<NodePtr> parblocks;
    parblocks.push_back(sp::make_leaf(std::move(spec)));
    return sp::make_par(ParShape::kSlice, 3, std::move(parblocks));
  };
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("src", "", "a")));
  steps.push_back(sliced_step(leaf("mid", "a", "b")));
  steps.push_back(sliced_step(leaf("sink", "b", "")));
  NodePtr root = sp::make_seq(std::move(steps));
  ASSERT_TRUE(sp::validate(*root).is_ok());

  sp::KernelFusionRegistry reg =
      mid_sink_registry(/*slice_preserving=*/true);
  int lost = -1;
  root = run_pipeline(std::move(root),
                      fuse_kernels_only(reg,
                                        [&](const sp::FusionCandidate& c) {
                                          lost = c.lost_replicas;
                                          return true;
                                        }));
  ASSERT_TRUE(root);
  EXPECT_EQ(lost, 1);
  ASSERT_EQ(root->children.size(), 2u);
  const sp::Node& par = *root->children[1];
  ASSERT_EQ(par.kind(), NodeKind::kPar);
  EXPECT_EQ(par.shape, ParShape::kSlice);
  EXPECT_EQ(par.replicas, 3);
  EXPECT_EQ(leaf_names(par), std::vector<std::string>{"mid+sink"});
  EXPECT_TRUE(sp::validate(*root).is_ok())
      << sp::validate(*root).to_string();
}

TEST(FuseKernelsPass, NullRegistryIsANoOp) {
  sp::PassOptions o = sp::PassOptions::none();
  o.fuse_kernels = true;  // no kernel_patterns set
  NodePtr root = run_pipeline(simple_chain(), o);
  ASSERT_TRUE(root);
  EXPECT_EQ(leaf_names(*root),
            (std::vector<std::string>{"src", "mid", "sink"}));
}

// --- the perf cost model ------------------------------------------------------

TEST(FusionModel, DeclinesWhenLinkFitsInL2Share) {
  perf::FusionModel model;  // 16 MiB L2, share 0.5, window 5
  // 1 MiB link: 5 MiB parked < 8 MiB budget — nothing to save.
  EXPECT_FALSE(perf::fusion_wins(model, 1 << 20, 1));
  EXPECT_FALSE(perf::fusion_wins(model, 0, 1));
}

TEST(FusionModel, FusesOverflowingLinkAtOneCore) {
  perf::FusionModel model;
  model.cores = 1;
  // 4 MiB link: 20 MiB parked overflows; at one core fusion forfeits
  // nothing, so the saving always wins.
  EXPECT_TRUE(perf::fusion_wins(model, 4 << 20, 4));
}

TEST(FusionModel, DeclinesWhenForfeitedParallelismCostsMore) {
  perf::FusionModel model;
  model.cores = 4;
  // Same overflowing link, but serializing a 4-way-sliced chain onto
  // one of four cores loses more than the miss-stall saving.
  EXPECT_FALSE(perf::fusion_wins(model, 4 << 20, 4));
}

TEST(FusionModel, LostParallelismCappedByCores) {
  perf::FusionModel model;
  model.cores = 1;
  // Plenty of forfeited slicing, but only one core to run it on: no
  // parallelism actually lost.
  EXPECT_TRUE(perf::fusion_wins(model, 4 << 20, 16));
}

TEST(FusionModel, AdvisorSumsMeasuredLinkBytes) {
  perf::StreamBytes bytes;
  bytes["hot"] = 4 << 20;
  bytes["cold"] = 1 << 10;
  perf::FusionModel model;
  model.cores = 1;
  sp::FusionAdvisor advisor = perf::make_fusion_advisor(bytes, model);

  sp::FusionCandidate hot;
  hot.link_streams = {"hot"};
  EXPECT_TRUE(advisor(hot));

  sp::FusionCandidate cold;
  cold.link_streams = {"cold"};
  EXPECT_FALSE(advisor(cold));

  // Streams the profile never saw measure 0 bytes: decline.
  sp::FusionCandidate unknown;
  unknown.link_streams = {"never_measured"};
  EXPECT_FALSE(advisor(unknown));
}

// --- the loop-level (fuse-kernels) cost model ---------------------------------

TEST(KernelFusionModel, DeclinesEmptyLink) {
  perf::FusionModel model;
  model.cores = 1;
  EXPECT_FALSE(perf::kernel_fusion_wins(model, 0, 1));
}

TEST(KernelFusionModel, ElidedPassesWinAtOneCoreEvenWithinL2) {
  // Unlike auto-group, eliding the link saves even when the parked
  // packets fit the L2 budget: the store+load passes were still L2
  // traffic, and at one core nothing is forfeited. 1 MiB link, window 5:
  // parked 5 MiB < 8 MiB budget, saving 2*1024 chunks * 192 cyc beats
  // the 8 cyc/chunk register-pressure charge.
  perf::FusionModel model;
  model.cores = 1;
  EXPECT_TRUE(perf::kernel_fusion_wins(model, 1 << 20, 1));
}

TEST(KernelFusionModel, SerializationLossDeclinesOnManyCores) {
  // Forfeiting a 4-way slice on 4 cores prices in 3/4 of the chain's
  // compute (4 cyc/byte scalar) — far more than the elided passes save,
  // thrashing or not.
  perf::FusionModel model;
  model.cores = 4;
  EXPECT_FALSE(perf::kernel_fusion_wins(model, 1 << 20, 4));
  EXPECT_FALSE(perf::kernel_fusion_wins(model, 4 << 20, 4));
  // A slice-preserving rewrite (lost_parallelism == 1) forfeits nothing
  // and wins regardless of core count.
  EXPECT_TRUE(perf::kernel_fusion_wins(model, 4 << 20, 1));
}

TEST(KernelFusionModel, VectorTiersShrinkTheSerializationLoss) {
  // Same candidate, cheaper cycles/byte: the forfeited compute costs
  // less, so a faster dispatch tier can flip a marginal decline to a
  // win. At 1.0 cyc/byte (AVX2): loss = 8*4096 + 4 MiB * 0.75 =
  // ~3.18 Mcyc vs saving 2*4096*640 = ~5.24 Mcyc (thrashing).
  perf::FusionModel model;
  model.cores = 4;
  model.cycles_per_byte = perf::dispatch_cycles_per_byte(
      media::KernelDispatch::kAvx2);
  EXPECT_TRUE(perf::kernel_fusion_wins(model, 4 << 20, 4));
}

TEST(KernelFusionModel, AdvisorDeclinesUnmeasuredStreams) {
  perf::StreamBytes bytes;
  bytes["hot"] = 1 << 20;
  perf::FusionModel model;
  model.cores = 1;
  sp::FusionAdvisor advisor =
      perf::make_kernel_fusion_advisor(bytes, model);
  sp::FusionCandidate hot;
  hot.link_streams = {"hot"};
  EXPECT_TRUE(advisor(hot));
  sp::FusionCandidate unknown;
  unknown.link_streams = {"never_measured"};
  EXPECT_FALSE(advisor(unknown));
}

TEST(DispatchCyclesPerByte, TierPins) {
  // The scalar reference is the FusionModel default; vector tiers scale
  // with lane width. These are contract pins — the committed figure
  // benches depend on the scalar default staying put.
  EXPECT_EQ(perf::dispatch_cycles_per_byte(media::KernelDispatch::kScalar),
            4.0);
  EXPECT_EQ(perf::dispatch_cycles_per_byte(media::KernelDispatch::kSse2),
            2.0);
  EXPECT_EQ(perf::dispatch_cycles_per_byte(media::KernelDispatch::kNeon),
            2.0);
  EXPECT_EQ(perf::dispatch_cycles_per_byte(media::KernelDispatch::kAvx2),
            1.0);
  EXPECT_EQ(perf::FusionModel{}.cycles_per_byte, 4.0);
  // kAuto resolves through the active dispatch, never returns a value
  // for "auto" itself.
  EXPECT_EQ(perf::dispatch_cycles_per_byte(media::KernelDispatch::kAuto),
            perf::dispatch_cycles_per_byte(media::active_kernel_dispatch()));
}

}  // namespace
