// Performance prediction (Fig. 1 / PAM-SoC companion): analytic SPC
// evaluation and profile-based DAG evaluation, validated against the
// simulator.
#include <gtest/gtest.h>

#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "perf/predict.hpp"
#include "sp/graph.hpp"
#include "xspcl/loader.hpp"

namespace {

using perf::Prediction;
using sp::NodePtr;
using sp::ParShape;

sp::LeafSpec leaf(const std::string& name, double cost) {
  sp::LeafSpec spec;
  spec.instance = name;
  spec.klass = "k";
  spec.params.push_back({"cost", std::to_string(cost)});
  return spec;
}

// Leaf cost taken from the "cost" parameter; slices divide the work.
double cost_fn(const sp::LeafSpec& spec, int slice_count) {
  for (const sp::Param& p : spec.params)
    if (p.name == "cost") return std::stod(p.value) / slice_count;
  return 0;
}

TEST(PredictTree, SequentialSums) {
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("a", 100)));
  steps.push_back(sp::make_leaf(leaf("b", 300)));
  steps.push_back(sp::make_leaf(leaf("c", 50)));
  NodePtr g = sp::make_seq(std::move(steps));
  Prediction p = perf::predict_from_tree(*g, cost_fn, 1);
  EXPECT_DOUBLE_EQ(p.work, 450);
  EXPECT_DOUBLE_EQ(p.span, 450);
  EXPECT_DOUBLE_EQ(p.t_iteration, 450);
  // Pipelined interval is bounded by the heaviest component.
  EXPECT_DOUBLE_EQ(p.interval, 450);
  Prediction p4 = perf::predict_from_tree(*g, cost_fn, 4);
  EXPECT_DOUBLE_EQ(p4.t_iteration, 450);  // span-bound: a chain is serial
  EXPECT_DOUBLE_EQ(p4.interval, 300);     // throughput-bound by `b`
}

TEST(PredictTree, TaskParallelTakesMaxSpan) {
  std::vector<NodePtr> blocks;
  blocks.push_back(sp::make_leaf(leaf("a", 100)));
  blocks.push_back(sp::make_leaf(leaf("b", 400)));
  NodePtr g = sp::make_par(ParShape::kTask, 1, std::move(blocks));
  Prediction p1 = perf::predict_from_tree(*g, cost_fn, 1);
  EXPECT_DOUBLE_EQ(p1.work, 500);
  EXPECT_DOUBLE_EQ(p1.span, 400);
  EXPECT_DOUBLE_EQ(p1.t_iteration, 500);  // work-bound on one processor
  Prediction p2 = perf::predict_from_tree(*g, cost_fn, 2);
  EXPECT_DOUBLE_EQ(p2.t_iteration, 400);  // span-bound
}

TEST(PredictTree, SliceDividesSpan) {
  std::vector<NodePtr> one;
  one.push_back(sp::make_leaf(leaf("w", 800)));
  NodePtr g = sp::make_par(ParShape::kSlice, 8, std::move(one));
  Prediction p8 = perf::predict_from_tree(*g, cost_fn, 8);
  EXPECT_DOUBLE_EQ(p8.work, 800);   // 8 copies x 100
  EXPECT_DOUBLE_EQ(p8.span, 100);   // one copy on the critical path
  EXPECT_DOUBLE_EQ(p8.t_iteration, 100);
}

TEST(PredictTree, CrossdepEvaluatedThroughSpForm) {
  std::vector<NodePtr> blocks;
  blocks.push_back(sp::make_leaf(leaf("h", 600)));
  blocks.push_back(sp::make_leaf(leaf("v", 600)));
  NodePtr g = sp::make_par(ParShape::kCrossDep, 6, std::move(blocks));
  Prediction p = perf::predict_from_tree(*g, cost_fn, 6);
  EXPECT_DOUBLE_EQ(p.work, 1200);
  // SP form: two slice phases in sequence -> span = 100 + 100.
  EXPECT_DOUBLE_EQ(p.span, 200);
}

TEST(PredictTree, DisabledOptionCostsNothing) {
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("base", 100)));
  steps.push_back(sp::make_manager(
      "m", "q", {},
      sp::make_option("off", false, sp::make_leaf(leaf("extra", 1000)))));
  NodePtr g = sp::make_seq(std::move(steps));
  Prediction p = perf::predict_from_tree(*g, cost_fn, 1);
  EXPECT_DOUBLE_EQ(p.work, 100);
}

TEST(PredictTree, TotalAccountsForPipelineFill) {
  std::vector<NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("a", 100)));
  steps.push_back(sp::make_leaf(leaf("b", 100)));
  NodePtr g = sp::make_seq(std::move(steps));
  Prediction p = perf::predict_from_tree(*g, cost_fn, 2);
  // total = span + (n-1) * interval; interval = max(200/2, 100) = 100.
  EXPECT_DOUBLE_EQ(p.total(1), 200);
  EXPECT_DOUBLE_EQ(p.total(11), 200 + 10 * 100);
  EXPECT_DOUBLE_EQ(p.total(0), 0);
}

// --- profile-based prediction vs the simulator -----------------------------------

class PredictVsSimTest : public ::testing::TestWithParam<int> {};

TEST_P(PredictVsSimTest, SpeedupPredictionTracksSimulator) {
  // A pipeline with a sliced middle stage; costs dominated by compute so
  // the analytic model (which ignores the memory system) applies.
  const char* spec = R"(
<xspcl><procedure name="main"><body>
  <component name="src" class="video_source">
    <param name="width" value="128"/><param name="height" value="96"/>
    <param name="frames" value="4"/>
    <outport name="out" stream="video"/>
  </component>
  <parallel shape="slice" n="8"><parblock>
    <component name="blur" class="blur_h">
      <param name="kernel" value="5"/>
      <inport name="in" stream="video"/>
      <outport name="out" stream="out"/>
    </component>
  </parblock></parallel>
  <component name="sink" class="frame_sink">
    <inport name="in" stream="out"/>
  </component>
</body></procedure></xspcl>)";
  components::register_standard_globally();
  auto prog =
      xspcl::build_program(spec, hinch::ComponentRegistry::global());
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();

  hinch::RunConfig run;
  run.iterations = 24;
  hinch::SimParams sim1;
  sim1.cores = 1;
  sim1.sync_costs = false;
  hinch::SimResult base = hinch::run_on_sim(*prog.value(), run, sim1);
  std::vector<double> cost(base.task_cycles.size(), 0);
  for (size_t i = 0; i < cost.size(); ++i)
    if (base.task_runs[i])
      cost[i] = static_cast<double>(base.task_cycles[i]) /
                static_cast<double>(base.task_runs[i]);

  int cores = GetParam();
  hinch::SimParams simn;
  simn.cores = cores;
  simn.sync_costs = cores > 1;
  hinch::SimResult measured = hinch::run_on_sim(*prog.value(), run, simn);
  double measured_speedup = static_cast<double>(base.total_cycles) /
                            static_cast<double>(measured.total_cycles);

  perf::Prediction p1 = perf::predict_from_profile(*prog.value(), cost, 1);
  perf::Prediction pn =
      perf::predict_from_profile(*prog.value(), cost, cores);
  double predicted_speedup =
      p1.total(run.iterations) / pn.total(run.iterations);

  // The SPC model should land in the right ballpark (the sim adds queue
  // contention and cache effects the analytic model ignores).
  EXPECT_GT(measured_speedup, 0.55 * predicted_speedup);
  EXPECT_LT(measured_speedup, 1.45 * predicted_speedup + 0.2);
}

INSTANTIATE_TEST_SUITE_P(Cores, PredictVsSimTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(PredictProfile, SpeedupCurveIsMonotonicAndBounded) {
  const char* spec = R"(
<xspcl><procedure name="main"><body>
  <component name="src" class="video_source">
    <param name="width" value="64"/><param name="height" value="64"/>
    <param name="frames" value="2"/>
    <outport name="out" stream="v"/>
  </component>
  <parallel shape="slice" n="4"><parblock>
    <component name="c" class="copy">
      <inport name="in" stream="v"/><outport name="out" stream="w"/>
    </component>
  </parblock></parallel>
  <component name="sink" class="frame_sink"><inport name="in" stream="w"/></component>
</body></procedure></xspcl>)";
  components::register_standard_globally();
  auto prog =
      xspcl::build_program(spec, hinch::ComponentRegistry::global());
  ASSERT_TRUE(prog.is_ok());
  std::vector<double> cost(prog.value()->tasks().size(), 100.0);
  std::vector<double> curve =
      perf::speedup_curve(*prog.value(), cost, 9, 100);
  ASSERT_EQ(curve.size(), 9u);
  EXPECT_DOUBLE_EQ(curve[0], 1.0);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i] + 1e-9, curve[i - 1]);     // monotone
    EXPECT_LE(curve[i], static_cast<double>(i + 1) + 1e-9);  // <= linear
  }
}

TEST(Wcet, IncludesDisabledOptions) {
  // WCET must assume the adversarial configuration: every option on.
  std::vector<sp::NodePtr> steps;
  steps.push_back(sp::make_leaf(leaf("base", 100)));
  steps.push_back(sp::make_manager(
      "m", "q", {},
      sp::make_option("off", false, sp::make_leaf(leaf("extra", 1000)))));
  NodePtr g = sp::make_seq(std::move(steps));
  EXPECT_DOUBLE_EQ(perf::wcet_iteration(*g, cost_fn, 1), 1100);
  // The typical-case prediction ignores the disabled branch.
  EXPECT_DOUBLE_EQ(perf::predict_from_tree(*g, cost_fn, 1).t_iteration, 100);
}

TEST(Wcet, UsesSpFormForCrossdep) {
  std::vector<NodePtr> blocks;
  blocks.push_back(sp::make_leaf(leaf("h", 400)));
  blocks.push_back(sp::make_leaf(leaf("v", 400)));
  NodePtr g = sp::make_par(ParShape::kCrossDep, 4, std::move(blocks));
  // 4 processors: each phase is 100 on the critical path; work 800/4=200.
  EXPECT_DOUBLE_EQ(perf::wcet_iteration(*g, cost_fn, 4), 200);
  EXPECT_DOUBLE_EQ(perf::wcet_iteration(*g, cost_fn, 1), 800);
}

}  // namespace
