// The obs layer: ring-buffer trace recorders, the Chrome trace-event
// exporter, the unified MetricsRegistry, and their wiring into both
// executors. The golden-trace tests pin the end-to-end guarantees the
// tooling relies on: a sim trace is byte-identical across runs, the
// exported JSON is well-formed (checked with the independent
// support::json parser), and a reconfigurable run carries exactly one
// marker per splice.
#include <gtest/gtest.h>

#include <clocale>
#include <set>
#include <string>

#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "obs/chrome_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "xspcl/loader.hpp"

namespace {

using obs::Category;
using obs::ClockDomain;
using obs::EventKind;
using obs::TraceEvent;
using obs::TraceRecorder;
using obs::TraceSession;

TEST(TraceRecorder, RoundsCapacityToPowerOfTwo) {
  EXPECT_EQ(TraceRecorder(1).capacity(), 2u);  // floor of 2
  EXPECT_EQ(TraceRecorder(5).capacity(), 8u);
  EXPECT_EQ(TraceRecorder(8).capacity(), 8u);
  EXPECT_EQ(TraceRecorder(100).capacity(), 128u);
}

TEST(TraceRecorder, RetainsEverythingUnderCapacity) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "built with HINCH_TRACING=OFF";
  TraceRecorder rec(8);
  for (uint64_t i = 0; i < 5; ++i)
    rec.counter(/*name=*/0, Category::kSched, /*ts=*/i,
                static_cast<int64_t>(i));
  EXPECT_EQ(rec.emitted(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  std::vector<TraceEvent> events = rec.collect();
  ASSERT_EQ(events.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].ts, i);
}

TEST(TraceRecorder, WraparoundKeepsNewestAndCountsDropped) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "built with HINCH_TRACING=OFF";
  TraceRecorder rec(8);
  for (uint64_t i = 0; i < 20; ++i)
    rec.counter(0, Category::kSched, i, static_cast<int64_t>(i));
  EXPECT_EQ(rec.emitted(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  std::vector<TraceEvent> events = rec.collect();
  ASSERT_EQ(events.size(), 8u);
  // Flight-recorder semantics: the oldest 12 were overwritten, the
  // retained window is [12, 20) in emission order.
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(events[i].ts, 12 + i);
}

TEST(TraceSession, InterningIsStableAndShared) {
  TraceSession session(16);
  uint16_t a = session.intern("alpha");
  uint16_t b = session.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(session.intern("alpha"), a);
  session.begin_run(2, ClockDomain::kCycles);
  // begin_run resets recorders but keeps the name table.
  EXPECT_EQ(session.intern("beta"), b);
  std::vector<std::string> names = session.names();
  ASSERT_GT(names.size(), static_cast<size_t>(std::max(a, b)));
  EXPECT_EQ(names[a], "alpha");
  EXPECT_EQ(names[b], "beta");
}

TEST(TraceSession, DroppedAndEmittedSumOverLanes) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "built with HINCH_TRACING=OFF";
  TraceSession session(4);
  session.begin_run(2, ClockDomain::kCycles);
  for (uint64_t i = 0; i < 6; ++i)
    session.recorder(0)->counter(0, Category::kSched, i, 0);
  session.recorder(1)->counter(0, Category::kSched, 0, 0);
  EXPECT_EQ(session.emitted(), 7u);
  EXPECT_EQ(session.dropped(), 2u);  // lane 0 overflowed its 4 slots
}

TEST(Metrics, SetAddGetAndDump) {
  obs::MetricsRegistry reg;
  reg.set("b.count", int64_t{3});
  reg.add("b.count", 4);
  reg.set("a.rate", 0.25);
  EXPECT_EQ(reg.get_int("b.count"), 7);
  EXPECT_DOUBLE_EQ(reg.get_double("a.rate"), 0.25);
  EXPECT_TRUE(reg.has("a.rate"));
  EXPECT_FALSE(reg.has("missing"));
  EXPECT_EQ(reg.get_int("missing"), 0);
  // Sorted, one metric per line.
  EXPECT_EQ(reg.to_text(), "a.rate 0.25\nb.count 7\n");

  auto parsed = support::json::parse(reg.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const support::json::Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.number_or("b.count", -1), 7);
  EXPECT_EQ(root.number_or("a.rate", -1), 0.25);
}

TEST(Metrics, AddAfterDoubleSetAccumulates) {
  // Regression: add() used to bump the integer slot unconditionally,
  // which nothing reads while is_double is set — the delta silently
  // vanished for any metric last set() as a double.
  obs::MetricsRegistry reg;
  reg.set("gauge", 0.5);
  reg.add("gauge", 2);
  EXPECT_DOUBLE_EQ(reg.get_double("gauge"), 2.5);
  EXPECT_EQ(reg.get_int("gauge"), 2);  // truncation of 2.5
  EXPECT_EQ(reg.to_text(), "gauge 2.5\n");
}

TEST(Metrics, DoubleDeltaPromotesIntMetric) {
  obs::MetricsRegistry reg;
  reg.set("v", int64_t{3});
  reg.add("v", 0.5);  // promotes, carrying the accumulated 3 forward
  EXPECT_DOUBLE_EQ(reg.get_double("v"), 3.5);
  // Once a double, always a double (until the next set()).
  reg.add("v", 1);
  EXPECT_DOUBLE_EQ(reg.get_double("v"), 4.5);
  // add() on a fresh name starts as an int counter.
  reg.add("fresh", 2);
  EXPECT_EQ(reg.to_text(), "fresh 2\nv 4.5\n");
}

TEST(Metrics, SnapshotIsADetachedCopy) {
  obs::MetricsRegistry reg;
  reg.set("a", int64_t{1});
  reg.set("b", 0.75);
  obs::MetricsRegistry::Snapshot snap = reg.snapshot();
  // Later registry writes do not leak into the snapshot.
  reg.set("a", int64_t{99});
  reg.set("c", int64_t{5});
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.get_int("a"), 1);
  EXPECT_DOUBLE_EQ(snap.get_double("b"), 0.75);
  EXPECT_TRUE(snap.has("b"));
  EXPECT_FALSE(snap.has("c"));
  EXPECT_EQ(snap.get_int("c"), 0);
  // values() exposes the map for iteration.
  EXPECT_EQ(snap.values().begin()->first, "a");
}

// Runs `fn` under a decimal-comma locale when one is installed;
// otherwise skips. Restores the previous locale on every path.
template <typename Fn>
void with_comma_locale(Fn&& fn) {
  const char* previous = std::setlocale(LC_ALL, nullptr);
  std::string saved = previous != nullptr ? previous : "C";
  const char* chosen = nullptr;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8"}) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      chosen = name;
      break;
    }
  }
  if (chosen == nullptr)
    GTEST_SKIP() << "no decimal-comma locale installed";
  fn();
  std::setlocale(LC_ALL, saved.c_str());
}

TEST(Metrics, JsonRoundTripsUnderCommaLocale) {
  // snprintf("%g") honours LC_NUMERIC: under de_DE it prints "0,25",
  // which is invalid JSON and breaks the dotted-name text format. The
  // formatter must be locale-independent.
  with_comma_locale([] {
    obs::MetricsRegistry reg;
    reg.set("a.rate", 0.25);
    reg.set("b.count", int64_t{7});
    EXPECT_EQ(reg.to_text(), "a.rate 0.25\nb.count 7\n");
    auto parsed = support::json::parse(reg.to_json());
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    EXPECT_DOUBLE_EQ(parsed.value().number_or("a.rate", -1), 0.25);
    // The parser side must be locale-independent too (strtod would
    // stop at the '.').
    EXPECT_DOUBLE_EQ(support::json::parse("6.02e23").value().number(),
                     6.02e23);
    EXPECT_DOUBLE_EQ(support::parse_double("2.5").value(), 2.5);
  });
}

TEST(Metrics, EscapesNamesInJson) {
  obs::MetricsRegistry reg;
  reg.set("weird\"name\\x", int64_t{1});
  auto parsed = support::json::parse(reg.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().number_or("weird\"name\\x", -1), 1);
}

// --- end-to-end traces ------------------------------------------------------

// A pure compute kernel with a fixed charge, so the traced programs stay
// deterministic and self-contained (no clips, no streams).
class ChargeComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig&) {
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::make_unique<ChargeComponent>());
  }
  void run(hinch::ExecContext& ctx) override { ctx.charge_compute(500); }
};

hinch::ComponentRegistry& test_registry() {
  static hinch::ComponentRegistry reg = [] {
    hinch::ComponentRegistry r;
    components::register_standard(r);
    r.register_class("charge", &ChargeComponent::create);
    return r;
  }();
  return reg;
}

// A small reconfigurable program: a scripted event source toggles an
// option twice, so a 2-core sim run exercises spans, admit markers,
// counters and reconfiguration splices.
constexpr char kReconfigSpec[] = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="user" class="event_script">
        <param name="queue" value="ui"/>
        <param name="script" value="3:flip;8:flip"/>
      </component>
      <component name="stage" class="charge"/>
      <manager name="mgr" queue="ui">
        <on event="flip" action="toggle" option="opt"/>
        <body>
          <option name="opt" enabled="true">
            <component name="optional" class="charge"/>
          </option>
        </body>
      </manager>
    </body>
  </procedure>
</xspcl>
)";

std::unique_ptr<hinch::Program> build_reconfig_program() {
  auto prog = xspcl::build_program(kReconfigSpec, test_registry());
  EXPECT_TRUE(prog.is_ok()) << prog.status().to_string();
  return prog.is_ok() ? std::move(prog).take() : nullptr;
}

struct TracedSim {
  hinch::SimResult result;
  std::string json;
};

TracedSim run_traced_sim() {
  TracedSim out;
  auto prog = build_reconfig_program();
  TraceSession session;
  hinch::RunConfig run;
  run.iterations = 16;
  hinch::SimParams sim;
  sim.cores = 2;
  sim.trace = &session;
  out.result = hinch::run_on_sim(*prog, run, sim);
  out.json = obs::to_chrome_json(session);
  return out;
}

TEST(GoldenTrace, SimTraceIsByteIdenticalAcrossRuns) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracedSim a = run_traced_sim();
  TracedSim b = run_traced_sim();
  EXPECT_EQ(a.result.total_cycles, b.result.total_cycles);
  EXPECT_EQ(a.json, b.json);
  EXPECT_FALSE(a.json.empty());
}

TEST(GoldenTrace, SimTraceSchemaAndContent) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracedSim t = run_traced_sim();

  auto parsed = support::json::parse(t.json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const support::json::Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());

  const support::json::Value* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->string_or("clock", ""), "cycles");
  EXPECT_EQ(other->number_or("lanes", 0), 2);

  const support::json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<int64_t> span_lanes;
  uint64_t spans = 0, reconfig_markers = 0, counters = 0;
  for (const support::json::Value& ev : events->array()) {
    ASSERT_TRUE(ev.is_object());
    std::string ph = ev.string_or("ph", "");
    ASSERT_FALSE(ph.empty());
    if (ph == "X") {
      ++spans;
      span_lanes.insert(static_cast<int64_t>(ev.number_or("tid", -1)));
    } else if (ph == "i" && ev.string_or("cat", "") == "reconfig") {
      ++reconfig_markers;
    } else if (ph == "C") {
      ++counters;
    }
  }
  // Spans on every simulated core, counters present, and exactly one
  // marker per splice the scheduler performed.
  EXPECT_EQ(span_lanes, (std::set<int64_t>{0, 1}));
  EXPECT_GT(spans, 0u);
  EXPECT_GT(counters, 0u);
  EXPECT_EQ(reconfig_markers, t.result.sched.reconfigurations);
  EXPECT_GE(reconfig_markers, 1u);
}

TEST(GoldenTrace, ThreadBackendTraceIsWellFormed) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  auto prog = build_reconfig_program();
  TraceSession session;
  hinch::RunConfig run;
  run.iterations = 16;
  hinch::ThreadResult r = hinch::run_on_threads(*prog, run, 2, &session);

  auto parsed = support::json::parse(obs::to_chrome_json(session));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const support::json::Value& root = parsed.value();
  const support::json::Value* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->string_or("clock", ""), "wall_ns");
  EXPECT_EQ(other->number_or("lanes", 0), 2);

  uint64_t spans = 0;
  for (const support::json::Value& ev :
       root.find("traceEvents")->array())
    if (ev.string_or("ph", "") == "X") ++spans;
  // Every executed job produced exactly one span.
  EXPECT_EQ(spans, r.jobs);
}

TEST(ChromeExport, EscapesAwkwardNames) {
  TraceSession session(16);
  session.begin_run(1, ClockDomain::kCycles);
  uint16_t name = session.intern("we\"ird\\na\nme\ttab");
  session.recorder(0)->span(name, Category::kTask, 10, 5, 0, 0);
  auto parsed = support::json::parse(obs::to_chrome_json(session));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
}

TEST(Metrics, CollectFromSimResultUnifiesAllSources) {
  auto prog = build_reconfig_program();
  hinch::RunConfig run;
  run.iterations = 8;
  hinch::SimParams sim;
  sim.cores = 2;
  hinch::SimResult r = hinch::run_on_sim(*prog, run, sim);

  obs::MetricsRegistry reg;
  hinch::collect_metrics(*prog, r, &reg);
  EXPECT_EQ(reg.get_int("sim.total_cycles"),
            static_cast<int64_t>(r.total_cycles));
  EXPECT_EQ(reg.get_int("sim.cores"), 2);
  EXPECT_EQ(reg.get_int("sched.jobs_executed"),
            static_cast<int64_t>(r.sched.jobs_executed));
  EXPECT_EQ(reg.get_int("mem.accesses"),
            static_cast<int64_t>(r.mem.accesses));
  EXPECT_TRUE(reg.has("sim.utilization"));
  EXPECT_TRUE(reg.has("task.stage.cycles"));
  // The dump is parseable JSON.
  auto parsed = support::json::parse(reg.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
}

TEST(Metrics, CollectFromThreadResult) {
  auto prog = build_reconfig_program();
  hinch::RunConfig run;
  run.iterations = 8;
  hinch::ThreadResult r = hinch::run_on_threads(*prog, run, 2);

  obs::MetricsRegistry reg;
  hinch::collect_metrics(*prog, r, &reg);
  EXPECT_EQ(reg.get_int("threads.jobs"), static_cast<int64_t>(r.jobs));
  EXPECT_EQ(reg.get_int("threads.workers"), 2);
  EXPECT_EQ(reg.get_int("sched.jobs_executed"),
            static_cast<int64_t>(r.sched.jobs_executed));
}

}  // namespace
