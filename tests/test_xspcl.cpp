// The coordination language front end: parsing, elaboration (procedure
// inlining, $-substitution, scoping), the loader, and code generation.
#include <gtest/gtest.h>

#include <fstream>

#include "sp/validate.hpp"
#include "xspcl/codegen.hpp"
#include "xspcl/elaborate.hpp"
#include "xspcl/loader.hpp"
#include "xspcl/parser.hpp"

namespace {

using xspcl::ast::Kind;
using xspcl::ast::Program;

Program must_parse(const std::string& text) {
  auto r = xspcl::parse_string(text);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? std::move(r).take() : Program{};
}

sp::NodePtr must_elaborate(const std::string& text) {
  auto program = xspcl::parse_string(text);
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();
  if (!program.is_ok()) return nullptr;
  auto graph = xspcl::elaborate(program.value());
  EXPECT_TRUE(graph.is_ok()) << graph.status().to_string();
  return graph.is_ok() ? std::move(graph).take() : nullptr;
}

const sp::Node* find_leaf(const sp::Node& root, const std::string& instance) {
  const sp::Node* found = nullptr;
  sp::visit(root, [&](const sp::Node& n) {
    if (n.kind() == sp::NodeKind::kLeaf && n.leaf.instance == instance)
      found = &n;
  });
  return found;
}

// --- parser ----------------------------------------------------------------

TEST(XspclParser, MinimalProgram) {
  Program p = must_parse(R"(
<xspcl>
  <procedure name="main"><body>
    <component name="c" class="k"><outport name="o" stream="s"/></component>
  </body></procedure>
</xspcl>)");
  ASSERT_EQ(p.procedures.size(), 1u);
  EXPECT_EQ(p.procedures[0].name, "main");
  ASSERT_EQ(p.procedures[0].body->children.size(), 1u);
  const auto& c = *p.procedures[0].body->children[0];
  EXPECT_EQ(c.kind, Kind::kComponent);
  EXPECT_EQ(c.klass, "k");
  ASSERT_EQ(c.outputs.size(), 1u);
  EXPECT_EQ(c.outputs[0].stream, "s");
}

TEST(XspclParser, RequiresMainProcedure) {
  auto r = xspcl::parse_string(
      "<xspcl><procedure name=\"other\"><body/></procedure></xspcl>");
  EXPECT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("main"), std::string::npos);
}

TEST(XspclParser, ParsesFormalsWithDefaults) {
  Program p = must_parse(R"(
<xspcl>
  <procedure name="main"><body/></procedure>
  <procedure name="f">
    <formal name="s" kind="stream"/>
    <formal name="v" kind="value" default="3"/>
    <body/>
  </procedure>
</xspcl>)");
  const auto* f = p.find("f");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->formals.size(), 2u);
  EXPECT_EQ(f->formals[0].kind, xspcl::ast::Formal::Kind::kStream);
  EXPECT_TRUE(f->formals[1].has_default);
  EXPECT_EQ(f->formals[1].fallback, "3");
}

TEST(XspclParser, ParsesManagerRules) {
  Program p = must_parse(R"(
<xspcl><procedure name="main"><body>
  <manager name="m" queue="q">
    <on event="a" action="enable" option="o"/>
    <on event="b" action="forward" queue="q2"/>
    <on event="c" action="reconfigure" payload="x=1"/>
    <body><option name="o"><component name="k" class="c"/></option></body>
  </manager>
</body></procedure></xspcl>)");
  const auto& m = *p.procedures[0].body->children[0];
  EXPECT_EQ(m.kind, Kind::kManager);
  ASSERT_EQ(m.rules.size(), 3u);
  EXPECT_EQ(m.rules[0].action, sp::EventAction::kEnable);
  EXPECT_EQ(m.rules[1].target, "q2");
  EXPECT_EQ(m.rules[2].payload, "x=1");
}

struct BadSpec {
  const char* name;
  const char* text;
  const char* expect_in_message;
};

class XspclParserErrorTest : public ::testing::TestWithParam<BadSpec> {};

TEST_P(XspclParserErrorTest, Rejected) {
  auto r = xspcl::parse_string(GetParam().text);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find(GetParam().expect_in_message),
            std::string::npos)
      << r.status().to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, XspclParserErrorTest,
    ::testing::Values(
        BadSpec{"wrong_root", "<nope/>", "root element"},
        BadSpec{"dup_proc",
                "<xspcl><procedure name='main'><body/></procedure>"
                "<procedure name='main'><body/></procedure></xspcl>",
                "duplicate procedure"},
        BadSpec{"no_body",
                "<xspcl><procedure name='main'/></xspcl>", "no <body>"},
        BadSpec{"bad_shape",
                "<xspcl><procedure name='main'><body>"
                "<parallel shape='weird'><parblock/></parallel>"
                "</body></procedure></xspcl>",
                "unknown parallel shape"},
        BadSpec{"slice_without_n",
                "<xspcl><procedure name='main'><body>"
                "<parallel shape='slice'><parblock/></parallel>"
                "</body></procedure></xspcl>",
                "n= attribute"},
        BadSpec{"empty_parallel",
                "<xspcl><procedure name='main'><body>"
                "<parallel shape='task'></parallel>"
                "</body></procedure></xspcl>",
                "at least one"},
        BadSpec{"bad_action",
                "<xspcl><procedure name='main'><body>"
                "<manager name='m' queue='q'>"
                "<on event='e' action='explode'/>"
                "<body/></manager></body></procedure></xspcl>",
                "unknown action"},
        BadSpec{"stream_default",
                "<xspcl><procedure name='main'><body/></procedure>"
                "<procedure name='f'>"
                "<formal name='s' kind='stream' default='x'/>"
                "<body/></procedure></xspcl>",
                "stream formals cannot have defaults"},
        BadSpec{"arg_without_value",
                "<xspcl><procedure name='main'><body>"
                "<call procedure='f'><arg name='a'/></call>"
                "</body></procedure>"
                "<procedure name='f'><body/></procedure></xspcl>",
                "stream= or value="}),
    [](const ::testing::TestParamInfo<BadSpec>& info) {
      return info.param.name;
    });

// --- substitution -----------------------------------------------------------

TEST(Substitute, BasicForms) {
  std::map<std::string, std::string> env{{"x", "7"}, {"long_name", "v"}};
  EXPECT_EQ(xspcl::substitute("a$x b", env).value(), "a7 b");
  EXPECT_EQ(xspcl::substitute("${x}9", env).value(), "79");
  EXPECT_EQ(xspcl::substitute("$long_name", env).value(), "v");
  EXPECT_EQ(xspcl::substitute("$$x", env).value(), "$x");
  EXPECT_EQ(xspcl::substitute("none", env).value(), "none");
}

TEST(Substitute, Errors) {
  std::map<std::string, std::string> env;
  EXPECT_FALSE(xspcl::substitute("$missing", env).is_ok());
  EXPECT_FALSE(xspcl::substitute("${unterminated", env).is_ok());
  EXPECT_FALSE(xspcl::substitute("$", env).is_ok());
}

// --- elaboration --------------------------------------------------------------

const char* kCallSpec = R"(
<xspcl>
  <procedure name="main"><body>
    <component name="src" class="producer">
      <outport name="out" stream="data"/>
    </component>
    <call procedure="stage" name="left">
      <arg name="in" stream="data"/>
      <arg name="gain" value="3"/>
    </call>
    <call procedure="stage" name="right">
      <arg name="in" stream="data"/>
    </call>
  </body></procedure>
  <procedure name="stage">
    <formal name="in" kind="stream"/>
    <formal name="gain" kind="value" default="1"/>
    <body>
      <component name="amp" class="amplifier">
        <param name="gain" value="$gain"/>
        <inport name="in" stream="in"/>
        <outport name="out" stream="boosted"/>
      </component>
    </body>
  </procedure>
</xspcl>
)";

TEST(Elaborate, InlinesCallsWithScoping) {
  sp::NodePtr g = must_elaborate(kCallSpec);
  ASSERT_TRUE(g);
  const sp::Node* left = find_leaf(*g, "left/amp");
  const sp::Node* right = find_leaf(*g, "right/amp");
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  // Value formals substitute; defaults apply.
  EXPECT_EQ(left->leaf.params[0].value, "3");
  EXPECT_EQ(right->leaf.params[0].value, "1");
  // Stream formal binds to the caller's stream; locals are scoped.
  EXPECT_EQ(left->leaf.inputs[0].stream, "data");
  EXPECT_EQ(left->leaf.outputs[0].stream, "left/boosted");
  EXPECT_EQ(right->leaf.outputs[0].stream, "right/boosted");
}

TEST(Elaborate, RejectsRecursion) {
  const char* spec = R"(
<xspcl>
  <procedure name="main"><body>
    <call procedure="loop"/>
  </body></procedure>
  <procedure name="loop"><body>
    <call procedure="loop"/>
  </body></procedure>
</xspcl>)";
  auto program = xspcl::parse_string(spec);
  ASSERT_TRUE(program.is_ok());
  auto graph = xspcl::elaborate(program.value());
  ASSERT_FALSE(graph.is_ok());
  EXPECT_NE(graph.status().message().find("recursi"), std::string::npos);
}

TEST(Elaborate, RejectsMissingArgument) {
  const char* spec = R"(
<xspcl>
  <procedure name="main"><body>
    <call procedure="f"/>
  </body></procedure>
  <procedure name="f">
    <formal name="s" kind="stream"/>
    <body/>
  </procedure>
</xspcl>)";
  auto program = xspcl::parse_string(spec);
  ASSERT_TRUE(program.is_ok());
  auto graph = xspcl::elaborate(program.value());
  ASSERT_FALSE(graph.is_ok());
  EXPECT_NE(graph.status().message().find("missing argument"),
            std::string::npos);
}

TEST(Elaborate, RejectsKindMismatch) {
  const char* spec = R"(
<xspcl>
  <procedure name="main"><body>
    <call procedure="f"><arg name="s" value="oops"/></call>
  </body></procedure>
  <procedure name="f">
    <formal name="s" kind="stream"/>
    <body/>
  </procedure>
</xspcl>)";
  auto program = xspcl::parse_string(spec);
  ASSERT_TRUE(program.is_ok());
  EXPECT_FALSE(xspcl::elaborate(program.value()).is_ok());
}

TEST(Elaborate, ParallelReplicasFromFormal) {
  const char* spec = R"(
<xspcl>
  <procedure name="main"><body>
    <call procedure="f"><arg name="n" value="6"/></call>
  </body></procedure>
  <procedure name="f">
    <formal name="n" kind="value"/>
    <body>
      <parallel shape="slice" n="$n"><parblock>
        <component name="w" class="k"><outport name="o" stream="s"/></component>
      </parblock></parallel>
    </body>
  </procedure>
</xspcl>)";
  sp::NodePtr g = must_elaborate(spec);
  ASSERT_TRUE(g);
  int replicas = 0;
  sp::visit(*g, [&](const sp::Node& n) {
    if (n.kind() == sp::NodeKind::kPar) replicas = n.replicas;
  });
  EXPECT_EQ(replicas, 6);
}

TEST(Elaborate, BadReplicaCountRejected) {
  const char* spec = R"(
<xspcl><procedure name="main"><body>
  <parallel shape="slice" n="zero"><parblock>
    <component name="w" class="k"/>
  </parblock></parallel>
</body></procedure></xspcl>)";
  auto program = xspcl::parse_string(spec);
  ASSERT_TRUE(program.is_ok());
  EXPECT_FALSE(xspcl::elaborate(program.value()).is_ok());
}

TEST(Loader, LoadStringValidates) {
  // The same component name twice -> validation must fail at load time.
  const char* spec = R"(
<xspcl><procedure name="main"><body>
  <component name="c" class="k"><outport name="o" stream="s"/></component>
  <component name="c" class="k"><inport name="i" stream="s"/></component>
</body></procedure></xspcl>)";
  auto r = xspcl::load_string(spec);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), support::Code::kAlreadyExists);
}

// --- positioned diagnostics -----------------------------------------------------

TEST(Elaborate, ErrorsCarrySourceLineAndColumn) {
  // The bad call sits on line 2 of the spec; the diagnostic must point
  // there, not just name the procedure.
  const char* spec = R"(<xspcl><procedure name="main"><body>
  <call procedure="nope"/>
</body></procedure></xspcl>)";
  auto program = xspcl::parse_string(spec);
  ASSERT_TRUE(program.is_ok());
  auto graph = xspcl::elaborate(program.value());
  ASSERT_FALSE(graph.is_ok());
  EXPECT_NE(graph.status().message().find("nope"), std::string::npos);
  EXPECT_NE(graph.status().message().find("elaboration at 2:"),
            std::string::npos)
      << graph.status().message();
}

TEST(Loader, ValidateErrorsCarrySourceLineAndColumn) {
  // sp::validate runs on elaborated nodes carrying XML positions: the
  // read-but-never-written diagnostic must name the reader's line.
  const char* spec = R"(<xspcl><procedure name="main"><body>
  <component name="c" class="k">
    <inport name="i" stream="ghost"/>
  </component>
</body></procedure></xspcl>)";
  auto r = xspcl::load_string(spec);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), support::Code::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("ghost"), std::string::npos);
  EXPECT_NE(r.status().message().find("(at 2:"), std::string::npos)
      << r.status().message();
}

// --- codegen --------------------------------------------------------------------

TEST(Codegen, EmitsBuildableStructure) {
  sp::NodePtr g = must_elaborate(kCallSpec);
  ASSERT_TRUE(g);
  xspcl::CodegenOptions options;
  options.app_name = "unit";
  std::string code = xspcl::generate_cpp(*g, options);
  // Namespaced build function.
  EXPECT_NE(code.find("namespace xspcl_gen_unit"), std::string::npos);
  EXPECT_NE(code.find("sp::NodePtr build_graph()"), std::string::npos);
  // All instances and streams appear.
  for (const char* s : {"left/amp", "right/amp", "left/boosted", "data"})
    EXPECT_NE(code.find(s), std::string::npos) << s;
  // A main is emitted by default.
  EXPECT_NE(code.find("int main(int argc"), std::string::npos);
  options.emit_main = false;
  std::string lib_only = xspcl::generate_cpp(*g, options);
  EXPECT_EQ(lib_only.find("int main"), std::string::npos);
}

TEST(Codegen, EscapesStrings) {
  sp::LeafSpec spec;
  spec.instance = "c";
  spec.klass = "k";
  spec.params.push_back({"text", "say \"hi\"\nplease\\now"});
  sp::NodePtr g = sp::make_leaf(std::move(spec));
  std::string code = xspcl::generate_cpp(*g, {.app_name = "esc"});
  EXPECT_NE(code.find("say \\\"hi\\\"\\nplease\\\\now"), std::string::npos);
}

TEST(Codegen, CoversAllNodeKinds) {
  const char* spec = R"(
<xspcl><procedure name="main"><body>
  <component name="src" class="k"><outport name="o" stream="s"/></component>
  <parallel shape="crossdep" n="3">
    <parblock><component name="h" class="k"><inport name="i" stream="s"/></component></parblock>
    <parblock><component name="v" class="k"><inport name="i" stream="s"/></component></parblock>
  </parallel>
  <manager name="m" queue="q">
    <on event="e" action="toggle" option="o1"/>
    <body><option name="o1" enabled="false">
      <component name="opt" class="k"/>
    </option></body>
  </manager>
</body></procedure></xspcl>)";
  sp::NodePtr g = must_elaborate(spec);
  ASSERT_TRUE(g);
  std::string code = xspcl::generate_cpp(*g, {.app_name = "all"});
  EXPECT_NE(code.find("kCrossDep"), std::string::npos);
  EXPECT_NE(code.find("make_manager"), std::string::npos);
  EXPECT_NE(code.find("make_option"), std::string::npos);
  EXPECT_NE(code.find("kToggle"), std::string::npos);
}

TEST(XspclParser, ParsesGroups) {
  Program p = must_parse(R"(
<xspcl><procedure name="main"><body>
  <group>
    <component name="a" class="ka"><outport name="o" stream="s"/></component>
    <component name="b" class="kb"><inport name="i" stream="s"/></component>
  </group>
</body></procedure></xspcl>)");
  const auto& g = *p.procedures[0].body->children[0];
  EXPECT_EQ(g.kind, Kind::kGroup);
  ASSERT_EQ(g.children.size(), 2u);
  EXPECT_EQ(g.children[1]->klass, "kb");
}

TEST(XspclParser, GroupRejectsNonComponents) {
  auto r = xspcl::parse_string(R"(
<xspcl><procedure name="main"><body>
  <group><parallel shape="task"><parblock/></parallel></group>
</body></procedure></xspcl>)");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("only <component>"),
            std::string::npos);
}

TEST(Codegen, EmitsGroups) {
  sp::NodePtr g = must_elaborate(R"(
<xspcl><procedure name="main"><body>
  <group>
    <component name="a" class="ka"><outport name="o" stream="s"/></component>
    <component name="b" class="kb"><inport name="i" stream="s"/></component>
  </group>
</body></procedure></xspcl>)");
  ASSERT_TRUE(g);
  std::string code = xspcl::generate_cpp(*g, {.app_name = "grp"});
  EXPECT_NE(code.find("make_group"), std::string::npos);
}

// --- includes --------------------------------------------------------------------

class IncludeTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir();
  void write(const std::string& name, const std::string& text) {
    std::ofstream f(dir_ + "/" + name);
    f << text;
    ASSERT_TRUE(f.good());
  }
};

TEST_F(IncludeTest, MergesLibraryProcedures) {
  write("lib.xml", R"(
<xspcl>
  <procedure name="wrap">
    <formal name="out" kind="stream"/>
    <body>
      <component name="c" class="k"><outport name="o" stream="out"/></component>
    </body>
  </procedure>
</xspcl>)");
  write("app.xml", R"(
<xspcl>
  <include file="lib.xml"/>
  <procedure name="main"><body>
    <call procedure="wrap"><arg name="out" stream="s"/></call>
    <component name="use" class="k2"><inport name="i" stream="s"/></component>
  </body></procedure>
</xspcl>)");
  auto program = xspcl::parse_file(dir_ + "/app.xml");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  EXPECT_NE(program.value().find("wrap"), nullptr);
  sp::NodePtr g = [&] {
    auto r = xspcl::elaborate(program.value());
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return r.is_ok() ? std::move(r).take() : nullptr;
  }();
  ASSERT_TRUE(g);
  EXPECT_NE(find_leaf(*g, "wrap/c"), nullptr);
}

TEST_F(IncludeTest, NestedIncludesWork) {
  write("base.xml", R"(
<xspcl><procedure name="base_p"><body/></procedure></xspcl>)");
  write("mid.xml", R"(
<xspcl><include file="base.xml"/>
<procedure name="mid_p"><body/></procedure></xspcl>)");
  write("top.xml", R"(
<xspcl><include file="mid.xml"/>
<procedure name="main"><body/></procedure></xspcl>)");
  auto program = xspcl::parse_file(dir_ + "/top.xml");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  EXPECT_NE(program.value().find("base_p"), nullptr);
  EXPECT_NE(program.value().find("mid_p"), nullptr);
}

TEST_F(IncludeTest, CycleRejected) {
  write("a.xml", "<xspcl><include file=\"b.xml\"/></xspcl>");
  write("b.xml", "<xspcl><include file=\"a.xml\"/>"
                 "<procedure name=\"main\"><body/></procedure></xspcl>");
  auto program = xspcl::parse_file(dir_ + "/a.xml");
  ASSERT_FALSE(program.is_ok());
  EXPECT_NE(program.status().message().find("cycle"), std::string::npos);
}

TEST_F(IncludeTest, MissingFileRejected) {
  write("app.xml", "<xspcl><include file=\"nope.xml\"/>"
                   "<procedure name=\"main\"><body/></procedure></xspcl>");
  auto program = xspcl::parse_file(dir_ + "/app.xml");
  ASSERT_FALSE(program.is_ok());
  EXPECT_NE(program.status().message().find("nope.xml"), std::string::npos);
}

TEST_F(IncludeTest, DuplicateAcrossFilesRejected) {
  write("lib.xml", "<xspcl><procedure name=\"p\"><body/></procedure></xspcl>");
  write("app.xml", R"(
<xspcl>
  <include file="lib.xml"/>
  <procedure name="p"><body/></procedure>
  <procedure name="main"><body/></procedure>
</xspcl>)");
  auto program = xspcl::parse_file(dir_ + "/app.xml");
  ASSERT_FALSE(program.is_ok());
  EXPECT_NE(program.status().message().find("duplicate procedure"),
            std::string::npos);
}

}  // namespace
