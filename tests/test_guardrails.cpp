// Death tests for the documented hard-failure modes: misuse that means a
// wiring or scheduling bug must abort loudly (SUP_CHECK is active in
// release builds), never corrupt data silently.
#include <gtest/gtest.h>

#include "hinch/stream.hpp"
#include "hinch/component.hpp"
#include "media/frame.hpp"

namespace {

class DeathStyle {
 public:
  DeathStyle() { ::testing::FLAGS_gtest_death_test_style = "threadsafe"; }
};
DeathStyle g_death_style;

using hinch::Packet;
using hinch::Stream;

TEST(GuardrailDeathTest, StreamReadBeforeWriteAborts) {
  Stream s("bench", 3);
  EXPECT_DEATH(s.read(0), "read before write");
}

TEST(GuardrailDeathTest, StaleSlotReadAborts) {
  Stream s("bench", 2);
  s.write(0, Packet::of(std::make_shared<int>(1), 4));
  // Slot 0 is shared by iterations 0 and 2; reading iteration 2 before
  // its producer ran must abort, not hand out iteration 0's data.
  EXPECT_DEATH(s.read(2), "read before write");
}

TEST(GuardrailDeathTest, InPlaceAccessBeforeWriteAborts) {
  // slot() is for read-modify-write consumers; handing out an unwritten
  // slot (and marking it written, as an earlier version did) would bless
  // stale data for every later reader.
  Stream s("bench", 3);
  EXPECT_DEATH(s.slot(0), "in-place access before write");
  s.write(0, Packet::of(std::make_shared<int>(1), 4));
  EXPECT_DEATH(s.slot(3), "in-place access before write");  // stale tenant
}

TEST(GuardrailStreamTest, AcquireCommitPublishesSlot) {
  // Two-phase in-place production: the slot stays invisible to readers
  // until commit_slot().
  Stream s("bench", 3);
  Packet& p = s.acquire_slot(0);
  EXPECT_FALSE(s.has(0));
  p = Packet::of(std::make_shared<int>(42), 4);
  s.commit_slot(0);
  EXPECT_TRUE(s.has(0));
  EXPECT_EQ(*s.read(0).get<int>(), 42);
  // After commit, in-place access is legal.
  EXPECT_EQ(*s.slot(0).get<int>(), 42);
}

TEST(GuardrailDeathTest, DoubleAcquireAborts) {
  Stream s("bench", 2);
  s.acquire_slot(1);
  s.commit_slot(1);
  EXPECT_DEATH(s.acquire_slot(1), "slot acquired twice");
}

TEST(GuardrailDeathTest, PacketTypeMismatchAborts) {
  Packet p = Packet::of(std::make_shared<int>(7), 4);
  EXPECT_DEATH(p.get<double>(), "type mismatch");
}

TEST(GuardrailDeathTest, EmptyPacketAborts) {
  Packet p;
  EXPECT_DEATH(p.get<int>(), "empty stream slot");
}

TEST(GuardrailDeathTest, BadSliceArgumentsAbort) {
  int r0 = 0, r1 = 0;
  EXPECT_DEATH(hinch::slice_rows(10, 5, 5, &r0, &r1), "CHECK failed");
  EXPECT_DEATH(hinch::slice_rows(10, -1, 5, &r0, &r1), "CHECK failed");
}

TEST(GuardrailDeathTest, BadFrameDimensionsAbort) {
  EXPECT_DEATH(media::Frame(media::PixelFormat::kGray, 0, 10),
               "CHECK failed");
}

}  // namespace
