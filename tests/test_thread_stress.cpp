// Multi-worker stress tests for the work-stealing thread executor: many
// iterations x deep pipeline window x reconfiguration events, asserting
// that the scheduler-visible statistics agree with the deterministic
// simulator backend. Designed to run under ThreadSanitizer (label
// "tsan"; build with -DHINCH_SANITIZE=thread) — any data race in the
// lock-free dependency-release path shows up here.
//
// Determinism notes. The event source is scheduled before the manager
// inside a <seq>, so with window == 1 every poll observes exactly the
// events of its own iteration and all five statistics are
// schedule-independent. With a deep window the iteration at which a
// flip is *detected* may vary between schedules (pipelined enters poll
// the shared queue), so jobs_executed/jobs_skipped can shift between
// executed and skipped — but their sum, and the event/reconfiguration
// counters, cannot.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>

#include "components/components.hpp"
#include "hinch/region_table.hpp"
#include "hinch/runtime.hpp"
#include "obs/trace.hpp"
#include "xspcl/loader.hpp"

namespace {

using hinch::Program;
using hinch::RunConfig;
using hinch::SchedulerStats;
using hinch::SimParams;
using hinch::SimResult;
using hinch::ThreadResult;

struct Counts {
  std::mutex mutex;
  std::map<std::string, int> runs;
  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    runs.clear();
  }
  int of(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    return runs[name];
  }
};

Counts& board() {
  static Counts c;
  return c;
}

class CountingComponent : public hinch::Component {
 public:
  static support::Result<std::unique_ptr<hinch::Component>> create(
      const hinch::ComponentConfig&) {
    return support::Result<std::unique_ptr<hinch::Component>>(
        std::make_unique<CountingComponent>());
  }
  void run(hinch::ExecContext& ctx) override {
    ctx.charge_compute(100);
    std::lock_guard<std::mutex> lock(board().mutex);
    ++board().runs[instance()];
  }
};

hinch::ComponentRegistry make_registry() {
  hinch::ComponentRegistry reg;
  components::register_standard(reg);
  reg.register_class("counter", &CountingComponent::create);
  return reg;
}

// `ntasks` independent counter components, a scripted event source, and
// a manager with one optional counter — event source first so that, at
// window 1, polls are deterministic.
std::string stress_spec(int ntasks, const std::string& script, bool enabled) {
  std::string spec = R"(
<xspcl>
  <procedure name="main">
    <body>
      <component name="user" class="event_script">
        <param name="queue" value="ui"/>
        <param name="script" value=")" +
                     script + R"("/>
      </component>
)";
  for (int i = 0; i < ntasks; ++i) {
    spec += "      <component name=\"c" + std::to_string(i) +
            "\" class=\"counter\"/>\n";
  }
  spec += std::string(R"(      <manager name="mgr" queue="ui">
        <on event="flip" action="toggle" option="opt"/>
        <on event="on"   action="enable" option="opt"/>
        <body>
          <option name="opt" enabled=")") +
          (enabled ? "true" : "false") + R"(">
            <component name="optional" class="counter"/>
          </option>
        </body>
      </manager>
    </body>
  </procedure>
</xspcl>
)";
  return spec;
}

class ThreadStressTest : public ::testing::Test {
 protected:
  void SetUp() override { board().clear(); }
  hinch::ComponentRegistry registry_ = make_registry();

  std::unique_ptr<Program> build(const std::string& spec) {
    auto prog = xspcl::build_program(spec, registry_);
    EXPECT_TRUE(prog.is_ok()) << prog.status().to_string();
    return prog.is_ok() ? std::move(prog).take() : nullptr;
  }

  SchedulerStats sim_stats(Program& prog, int64_t iterations, int window) {
    RunConfig run;
    run.iterations = iterations;
    run.window = window;
    SimParams sim;
    sim.cores = 2;
    SimResult r = hinch::run_on_sim(prog, run, sim);
    board().clear();
    return r.sched;
  }

  ThreadResult run_threads(Program& prog, int64_t iterations, int window,
                           int workers) {
    RunConfig run;
    run.iterations = iterations;
    run.window = window;
    return hinch::run_on_threads(prog, run, workers);
  }
};

void expect_equal_stats(const SchedulerStats& a, const SchedulerStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.jobs_executed, b.jobs_executed) << what;
  EXPECT_EQ(a.jobs_skipped, b.jobs_skipped) << what;
  EXPECT_EQ(a.reconfigurations, b.reconfigurations) << what;
  EXPECT_EQ(a.events_handled, b.events_handled) << what;
  EXPECT_EQ(a.components_created, b.components_created) << what;
}

TEST_F(ThreadStressTest, StatsMatchSimAtWindowOne) {
  // Window 1: iterations are fully sequential, every statistic is
  // schedule-independent even with mid-run reconfigurations.
  constexpr int kTasks = 12;
  constexpr int64_t kIters = 40;
  auto prog = build(stress_spec(kTasks, "3:flip;9:flip;15:flip", false));
  ASSERT_TRUE(prog);
  SchedulerStats want = sim_stats(*prog, kIters, /*window=*/1);
  EXPECT_EQ(want.reconfigurations, 3u);
  for (int workers : {2, 4, 8}) {
    ThreadResult r = run_threads(*prog, kIters, /*window=*/1, workers);
    expect_equal_stats(r.sched, want,
                       "workers=" + std::to_string(workers));
    EXPECT_EQ(board().of("c0"), kIters);
    EXPECT_EQ(board().of("c11"), kIters);
    board().clear();
  }
}

TEST_F(ThreadStressTest, StatsMatchSimDeepWindowNoStateChanges) {
  // Deep window, events that never change option state (§3.4: "the
  // event is ignored when the option is already in the required
  // state"): every field still deterministic.
  constexpr int kTasks = 16;
  constexpr int64_t kIters = 60;
  auto prog = build(stress_spec(kTasks, "3:on;7:on;11:on", true));
  ASSERT_TRUE(prog);
  SchedulerStats want = sim_stats(*prog, kIters, /*window=*/5);
  EXPECT_EQ(want.reconfigurations, 0u);
  EXPECT_EQ(want.events_handled, 3u);
  for (int workers : {2, 4, 8}) {
    ThreadResult r = run_threads(*prog, kIters, /*window=*/5, workers);
    expect_equal_stats(r.sched, want,
                       "workers=" + std::to_string(workers));
    EXPECT_EQ(board().of("optional"), kIters);
    board().clear();
  }
}

TEST_F(ThreadStressTest, DeepWindowReconfigInvariants) {
  // Deep window with widely spaced flips (farther apart than any two
  // in-flight polls can straddle): the detection iteration may differ
  // between schedules, so executed/skipped can trade off against each
  // other — but every (task, iteration) instance is exactly one of the
  // two, and every event is handled exactly once.
  constexpr int kTasks = 24;
  constexpr int64_t kIters = 300;
  const int window = 5;
  std::string script;
  int64_t flips = 0;
  for (int64_t at = 20; at <= kIters - 20; at += 40) {
    script += (script.empty() ? "" : ";") + std::to_string(at) + ":flip";
    ++flips;
  }
  auto prog = build(stress_spec(kTasks, script, false));
  ASSERT_TRUE(prog);
  SchedulerStats want = sim_stats(*prog, kIters, window);
  EXPECT_EQ(want.reconfigurations, static_cast<uint64_t>(flips));
  // Total instances: ntasks counters + event source + manager enter +
  // manager exit + the optional component, each once per iteration;
  // plus one splice job per reconfiguration.
  const uint64_t per_iter = static_cast<uint64_t>(kTasks) + 4;
  const uint64_t total = per_iter * static_cast<uint64_t>(kIters);
  ASSERT_EQ(want.jobs_executed + want.jobs_skipped,
            total + want.reconfigurations);
  for (int workers : {2, 4, 8}) {
    ThreadResult r = run_threads(*prog, kIters, window, workers);
    const std::string what = "workers=" + std::to_string(workers);
    EXPECT_EQ(r.sched.reconfigurations, want.reconfigurations) << what;
    EXPECT_EQ(r.sched.events_handled, want.events_handled) << what;
    EXPECT_EQ(r.sched.components_created, want.components_created) << what;
    EXPECT_EQ(r.sched.jobs_executed + r.sched.jobs_skipped,
              total + r.sched.reconfigurations)
        << what;
    // Non-optional components run every iteration regardless of the
    // schedule.
    EXPECT_EQ(board().of("c0"), kIters) << what;
    EXPECT_EQ(board().of("c23"), kIters) << what;
    // Executor bookkeeping is self-consistent.
    ASSERT_EQ(r.worker_jobs.size(), static_cast<size_t>(workers)) << what;
    uint64_t sum = 0;
    for (uint64_t j : r.worker_jobs) sum += j;
    EXPECT_EQ(sum, r.jobs) << what;
    EXPECT_EQ(r.jobs, r.sched.jobs_executed) << what;
    board().clear();
  }
}

TEST_F(ThreadStressTest, RepeatedRunsStayConsistent) {
  // Hammer the same program repeatedly at high worker counts; under
  // TSan this is the main race detector for the release/fire/finish
  // paths.
  constexpr int kTasks = 8;
  constexpr int64_t kIters = 120;
  auto prog = build(stress_spec(kTasks, "11:flip;51:flip;91:flip", false));
  ASSERT_TRUE(prog);
  const uint64_t per_iter = static_cast<uint64_t>(kTasks) + 4;
  for (int round = 0; round < 5; ++round) {
    ThreadResult r = run_threads(*prog, kIters, /*window=*/5, 8);
    EXPECT_EQ(r.sched.reconfigurations, 3u) << "round " << round;
    EXPECT_EQ(r.sched.jobs_executed + r.sched.jobs_skipped,
              per_iter * kIters + r.sched.reconfigurations)
        << "round " << round;
    EXPECT_EQ(board().of("c0"), kIters) << "round " << round;
    board().clear();
  }
}

TEST_F(ThreadStressTest, TracingEnabledStaysRaceFreeAndConsistent) {
  // Same hammer with a TraceSession attached: every worker emits spans,
  // steal/park markers and counters into its own recorder lane, and the
  // small ring (4096/lane) forces constant wraparound. Under TSan this
  // is the designated workload for the tracing paths.
  constexpr int kTasks = 8;
  constexpr int64_t kIters = 120;
  auto prog = build(stress_spec(kTasks, "11:flip;51:flip;91:flip", false));
  ASSERT_TRUE(prog);
  obs::TraceSession session(1 << 12);
  const uint64_t per_iter = static_cast<uint64_t>(kTasks) + 4;
  for (int round = 0; round < 3; ++round) {
    RunConfig run;
    run.iterations = kIters;
    run.window = 5;
    ThreadResult r = hinch::run_on_threads(*prog, run, 8, &session);
    EXPECT_EQ(r.sched.reconfigurations, 3u) << "round " << round;
    EXPECT_EQ(r.sched.jobs_executed + r.sched.jobs_skipped,
              per_iter * kIters + r.sched.reconfigurations)
        << "round " << round;
    if (obs::kTraceCompiledIn) {
      // One span per executed job; emitted also counts markers/counters.
      EXPECT_GE(session.emitted(), r.jobs) << "round " << round;
    }
    board().clear();
  }
}

// Regression: stream region keys must stay distinct for streams deeper
// than 256 slots. The old packing shifted the stream index by only 8
// bits, so (stream 1, slot 4) collided with (stream 0, slot 260) and
// the simulator accounted two different buffers as one region.
TEST(RegionTableTest, DeepStreamKeysDoNotAlias) {
  sim::CacheConfig config;
  sim::MemorySystem mem(config);
  hinch::RegionTable table(&mem, /*depth=*/300);
  EXPECT_NE(table.stream_key(0, 260), table.stream_key(1, 4));
  sim::RegionId a = table.stream_region(0, 260, 1024);
  sim::RegionId b = table.stream_region(1, 4, 1024);
  EXPECT_NE(a, b);
  // Same (stream, slot) still shares one region across ring reuse.
  EXPECT_EQ(table.stream_region(0, 260, 1024),
            table.stream_region(0, 560, 1024));
}

TEST(RegionTableTest, KeysInjectiveAcrossManyStreams) {
  sim::CacheConfig config;
  sim::MemorySystem mem(config);
  const int depth = 1000;
  hinch::RegionTable table(&mem, depth);
  std::map<uint64_t, std::pair<int, int64_t>> seen;
  for (int stream = 0; stream < 8; ++stream) {
    for (int64_t slot = 0; slot < depth; slot += 37) {
      uint64_t key = table.stream_key(stream, slot);
      auto [it, inserted] = seen.emplace(key, std::make_pair(stream, slot));
      EXPECT_TRUE(inserted) << "key collision: stream " << stream << " slot "
                            << slot << " vs stream " << it->second.first
                            << " slot " << it->second.second;
    }
  }
}

}  // namespace
