// Multi-tile platform model: XML spec loading (positioned diagnostics),
// heterogeneous-platform determinism (run-twice, engine equivalence,
// charge-trace replay, a golden cycle snapshot), the 256-core wide-mask
// regime, the capacity-normalized utilization fix, and the loud failure
// on conflicting cache.cores.
#include <gtest/gtest.h>

#include "bench/bench_util.hpp"
#include "xspcl/platform_xml.hpp"

namespace {

struct DeathStyle {
  DeathStyle() { ::testing::FLAGS_gtest_death_test_style = "threadsafe"; }
};
DeathStyle g_death_style;

// Mirrors specs/platform_2tile.xml (which the xspclc ctest leg runs):
// one full-speed tile + one half-frequency tile, 4 MiB L2 each.
const char kTwoTileSpec[] = R"(<platform name="spacecake-2tile"
          topology="crossbar" hop_cycles_per_chunk="64">
  <coreclass name="trimedia" cycle_multiplier="1.0"/>
  <coreclass name="lite" cycle_multiplier="2.0"/>
  <tile cores="2" class="trimedia" l2_bytes="4194304"/>
  <tile cores="2" class="lite" l2_bytes="4194304"/>
</platform>)";

// Mirrors specs/platform_256.xml: a 4x4 mesh of 16-core tiles, 1 MiB
// L2 each — 272 presence bits, well past the old 64-bit mask.
const char k256Spec[] = R"(<platform name="spacecake-256" topology="mesh"
          mesh_width="4" hop_cycles_per_chunk="64">
  <tile cores="16" l2_bytes="1048576" count="16"/>
</platform>)";

sim::PlatformConfig load_platform(const char* text) {
  auto result = xspcl::load_platform_string(text);
  SUP_CHECK_MSG(result.is_ok(), result.status().to_string().c_str());
  return std::move(result).take();
}

apps::PipConfig small_pip() {
  apps::PipConfig c = bench::paper_pip(1);
  c.frames = 6;
  return c;
}

hinch::SimResult run_platform(const std::string& spec, int64_t frames,
                              const sim::PlatformConfig& platform,
                              sim::LruImpl impl) {
  auto prog = bench::build_program(spec);
  hinch::RunConfig run;
  run.iterations = frames;
  hinch::SimParams sim;
  sim.platform = platform;
  sim.cache.lru_impl = impl;
  return hinch::run_on_sim(*prog, run, sim);
}

void expect_same(const hinch::SimResult& a, const hinch::SimResult& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_TRUE(a.mem == b.mem);
  EXPECT_EQ(a.core_busy, b.core_busy);
  EXPECT_EQ(a.queue_wait_cycles, b.queue_wait_cycles);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.task_cycles, b.task_cycles);
  EXPECT_EQ(a.tile_busy, b.tile_busy);
  EXPECT_EQ(a.tile_jobs, b.tile_jobs);
}

TEST(PlatformXml, ParsesFullSpec) {
  sim::PlatformConfig p = load_platform(kTwoTileSpec);
  EXPECT_EQ(p.name, "spacecake-2tile");
  EXPECT_EQ(p.topology, sim::Topology::kCrossbar);
  EXPECT_EQ(p.hop_cycles_per_chunk, 64u);
  EXPECT_EQ(p.dispatch, sim::DispatchPolicy::kLowestCore);
  ASSERT_EQ(p.classes.size(), 2u);
  EXPECT_EQ(p.classes[0].name, "trimedia");
  EXPECT_DOUBLE_EQ(p.classes[1].cycle_multiplier, 2.0);
  ASSERT_EQ(p.tiles.size(), 2u);
  EXPECT_EQ(p.tiles[0].cores, 2);
  EXPECT_EQ(p.tiles[1].core_class, 1);
  EXPECT_EQ(p.tiles[1].l2_bytes, 4194304u);
  EXPECT_EQ(p.total_cores(), 4);
  EXPECT_EQ(p.tile_map(), (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(p.core_multipliers(), (std::vector<double>{1, 1, 2, 2}));

  sim::PlatformConfig mesh = load_platform(k256Spec);
  EXPECT_EQ(mesh.total_cores(), 256);
  EXPECT_EQ(mesh.tile_count(), 16);
  // Mesh hops: tile 0 = (0,0), tile 15 = (3,3) -> Manhattan 6.
  EXPECT_EQ(mesh.hops(0, 15), 6);
  EXPECT_EQ(mesh.hops(0, 1), 1);
  EXPECT_EQ(mesh.hops(5, 5), 0);
}

TEST(PlatformXml, RingAndDispatchAttributes) {
  sim::PlatformConfig p = load_platform(
      R"(<platform topology="ring" dispatch="fastest">
  <tile cores="1" count="6"/>
</platform>)");
  EXPECT_EQ(p.topology, sim::Topology::kRing);
  EXPECT_EQ(p.dispatch, sim::DispatchPolicy::kFastestFirst);
  EXPECT_TRUE(p.classes.empty());  // implicit baseline class
  EXPECT_EQ(p.hops(0, 5), 1);      // ring wraps
  EXPECT_EQ(p.hops(0, 3), 3);
}

// Every structural error must carry the source position of the element
// it concerns ("platform spec at LINE:COL: ...").
TEST(PlatformXml, PositionedParseErrors) {
  struct Case {
    const char* xml;
    const char* want;  // substring of the diagnostic
  };
  const Case cases[] = {
      {"<machine/>", "at 1:1: expected <platform> root"},
      {"<platform topology=\"torus\"><tile cores=\"1\"/></platform>",
       "unknown topology 'torus'"},
      {"<platform dispatch=\"random\"><tile cores=\"1\"/></platform>",
       "unknown dispatch policy 'random'"},
      {"<platform>\n  <tile/>\n</platform>", "at 2:3: <tile> needs cores"},
      {"<platform>\n  <tile cores=\"zero\"/>\n</platform>",
       "at 2:3: attribute 'cores' of <tile>"},
      {"<platform>\n  <tile cores=\"1\" class=\"dsp\"/>\n</platform>",
       "at 2:3: unknown core class 'dsp'"},
      {"<platform>\n  <coreclass name=\"a\" cycle_multiplier=\"0\"/>\n"
       "  <tile cores=\"1\"/>\n</platform>",
       "at 2:3: cycle_multiplier must be positive"},
      {"<platform>\n  <interconnect/>\n</platform>",
       "at 2:3: unknown element <interconnect>"},
      {"<platform/>", "declares no <tile>"},
      {"<platform topology=\"mesh\"><tile cores=\"1\"/></platform>",
       "mesh topology needs mesh_width"},
  };
  for (const Case& c : cases) {
    auto result = xspcl::load_platform_string(c.xml);
    ASSERT_FALSE(result.is_ok()) << c.xml;
    EXPECT_NE(result.status().message().find(c.want), std::string::npos)
        << "diagnostic for\n  " << c.xml << "\nwas\n  "
        << result.status().message();
  }
}

// Two-tile heterogeneous golden: run-twice identity, flat/list engine
// identity, charge-trace replay identity, and pinned absolute numbers
// so a semantic change to multi-tile charging fails loudly.
TEST(PlatformSim, TwoTileHeteroGolden) {
  const std::string spec = apps::pip_xspcl(small_pip());
  const sim::PlatformConfig platform = load_platform(kTwoTileSpec);

  hinch::SimResult a = run_platform(spec, 6, platform, sim::LruImpl::kFlat);
  hinch::SimResult b = run_platform(spec, 6, platform, sim::LruImpl::kFlat);
  expect_same(a, b);
  hinch::SimResult list =
      run_platform(spec, 6, platform, sim::LruImpl::kListReference);
  expect_same(a, list);

  EXPECT_EQ(a.tiles, 2);
  ASSERT_EQ(a.core_multiplier.size(), 4u);
  EXPECT_DOUBLE_EQ(a.core_multiplier[3], 2.0);
  ASSERT_EQ(a.tile_busy.size(), 2u);
  EXPECT_EQ(a.tile_busy[0] + a.tile_busy[1],
            a.core_busy[0] + a.core_busy[1] + a.core_busy[2] +
                a.core_busy[3]);

  // Golden snapshot (produced by the first multi-tile implementation;
  // both engines agree on every field).
  EXPECT_EQ(a.total_cycles, 7472006u);
  EXPECT_EQ(a.mem.accesses, 24072u);
  EXPECT_EQ(a.mem.l1_hits, 46u);
  EXPECT_EQ(a.mem.l2_hits, 9759u);
  EXPECT_EQ(a.mem.remote_hits, 4566u);
  EXPECT_EQ(a.mem.mem_fetches, 14267u);
  EXPECT_EQ(a.mem.invalidations, 146u);
  EXPECT_EQ(a.mem.l2_invalidations, 300u);
  EXPECT_EQ(a.mem.stall_cycles, 11296832u);
  EXPECT_EQ(a.jobs, 354u);

  // Replay identity: a charge trace recorded on the hetero platform
  // replays to identical results on both engines.
  auto prog = bench::build_program(spec);
  hinch::RunConfig run;
  run.iterations = 6;
  hinch::ChargeTrace trace;
  hinch::SimParams record;
  record.platform = platform;
  record.record_trace = &trace;
  hinch::SimResult recorded = hinch::run_on_sim(*prog, run, record);
  expect_same(a, recorded);
  for (sim::LruImpl impl :
       {sim::LruImpl::kFlat, sim::LruImpl::kListReference}) {
    hinch::SimParams replay;
    replay.platform = platform;
    replay.cache.lru_impl = impl;
    replay.replay_trace = &trace;
    hinch::SimResult replayed = hinch::run_on_sim(*prog, run, replay);
    expect_same(recorded, replayed);
  }
}

// Acceptance criterion: a 256-core multi-tile spec simulates to
// completion on both LRU engines with identical stats and cycles.
TEST(PlatformSim, MeshOf256CoresBothEngines) {
  const std::string spec = apps::pip_xspcl(small_pip());
  const sim::PlatformConfig platform = load_platform(k256Spec);
  hinch::SimResult flat =
      run_platform(spec, 6, platform, sim::LruImpl::kFlat);
  hinch::SimResult list =
      run_platform(spec, 6, platform, sim::LruImpl::kListReference);
  expect_same(flat, list);
  EXPECT_EQ(flat.tiles, 16);
  EXPECT_EQ(flat.core_busy.size(), 256u);
  EXPECT_GT(flat.total_cycles, 0u);
}

// Remote-tile L2 hits must be charged the interconnect cost: the same
// sharing pattern on one tile vs two tiles differs exactly by hop
// cycles, and the remote_hits counter picks it up.
TEST(PlatformSim, RemoteFetchChargesHops) {
  sim::CacheConfig one_tile;
  one_tile.cores = 2;
  sim::CacheConfig two_tiles = one_tile;
  two_tiles.tile_of_core = {0, 1};
  two_tiles.hop_cycles_per_chunk = 64;
  for (sim::LruImpl impl :
       {sim::LruImpl::kFlat, sim::LruImpl::kListReference}) {
    one_tile.lru_impl = impl;
    two_tiles.lru_impl = impl;
    sim::MemorySystem local(one_tile);
    sim::MemorySystem remote(two_tiles);
    sim::RegionId region = 0;
    for (sim::MemorySystem* m : {&local, &remote}) {
      region = m->register_region(4096, "buf");  // same id in both
      m->access(0, region, 0, 4096, true);   // core 0: 4 chunks from mem
      m->access(1, region, 0, 4096, false);  // core 1: served from L2
    }
    EXPECT_EQ(local.stats().l2_hits, 4u);
    EXPECT_EQ(local.stats().remote_hits, 0u);
    EXPECT_EQ(remote.stats().l2_hits, 4u);
    EXPECT_EQ(remote.stats().remote_hits, 4u);  // core 1 is on tile 1
    // 4 chunks * (192 L2 + 1 hop * 64) vs 4 * 192.
    EXPECT_EQ(remote.stats().stall_cycles - local.stats().stall_cycles,
              4u * 64u);
    // A write from core 0 now invalidates tile 1's L2 copies.
    local.access(0, region, 0, 4096, true);
    remote.access(0, region, 0, 4096, true);
    EXPECT_EQ(local.stats().l2_invalidations, 0u);
    EXPECT_EQ(remote.stats().l2_invalidations, 4u);
  }
}

// The utilization fix: busy cycles on a slow core represent less work,
// so heterogeneous platforms normalize by the cycle multiplier.
// Homogeneous results keep the exact legacy expression.
TEST(SimResultUtilization, CapacityNormalized) {
  hinch::SimResult r;
  r.total_cycles = 100;
  r.core_busy = {100, 50};
  EXPECT_DOUBLE_EQ(r.utilization(), 0.75);  // legacy: (100+50)/(100*2)

  r.core_multiplier = {1.0, 1.0};  // explicit homogeneous: unchanged
  EXPECT_DOUBLE_EQ(r.utilization(), 0.75);

  // Core 1 runs at half frequency (multiplier 2): its 50 busy cycles
  // are 25 baseline-equivalents of work, its capacity 50 equivalents.
  // work = 100 + 25 = 125, capacity = 100 + 50 -> 125/150.
  r.core_multiplier = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(r.utilization(), (100.0 + 25.0) / 150.0);

  // Fully-busy hetero platform is 100% utilized, not overstated.
  r.core_busy = {100, 100};
  EXPECT_DOUBLE_EQ(r.utilization(), 1.0);
}

// cache.cores used to be clobbered silently; now a conflicting nonzero
// value aborts.
TEST(SimGuards, ConflictingCacheCoresAborts) {
  const std::string spec = apps::pip_xspcl(small_pip());
  auto prog = bench::build_program(spec);
  hinch::RunConfig run;
  run.iterations = 2;
  hinch::SimParams params;
  params.cores = 2;
  params.cache.cores = 3;
  EXPECT_DEATH(hinch::run_on_sim(*prog, run, params),
               "cache.cores conflicts");

  // Matching values and the 0 default are both fine.
  params.cache.cores = 2;
  EXPECT_GT(hinch::run_on_sim(*prog, run, params).total_cycles, 0u);
}

TEST(SimGuards, CoresConflictingWithPlatformAborts) {
  const std::string spec = apps::pip_xspcl(small_pip());
  auto prog = bench::build_program(spec);
  hinch::RunConfig run;
  run.iterations = 2;
  hinch::SimParams params;
  params.platform = sim::PlatformConfig::homogeneous(2, 2);
  params.cores = 3;
  EXPECT_DEATH(hinch::run_on_sim(*prog, run, params),
               "conflicts with the platform");
}

// Dispatch policies are platform behaviour, not cosmetics: fastest-first
// on a hetero platform keeps work off the slow tile when the fast tile
// is free.
TEST(PlatformSim, FastestFirstPrefersFastCores) {
  const std::string spec = apps::pip_xspcl(small_pip());
  sim::PlatformConfig platform = load_platform(kTwoTileSpec);
  platform.dispatch = sim::DispatchPolicy::kFastestFirst;
  hinch::SimResult r = run_platform(spec, 6, platform, sim::LruImpl::kFlat);
  ASSERT_EQ(r.tile_jobs.size(), 2u);
  // Tile 0 holds the fast cores; it must absorb the bulk of the jobs.
  EXPECT_GT(r.tile_jobs[0], r.tile_jobs[1]);
  // And stay deterministic.
  expect_same(r, run_platform(spec, 6, platform, sim::LruImpl::kFlat));
}

}  // namespace
