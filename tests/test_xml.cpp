#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace {

xml::ElementPtr must_parse(std::string_view text) {
  auto r = xml::parse(text);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? std::move(r).take() : nullptr;
}

TEST(XmlParser, SimpleElement) {
  auto root = must_parse("<a/>");
  ASSERT_TRUE(root);
  EXPECT_EQ(root->name(), "a");
  EXPECT_TRUE(root->children().empty());
}

TEST(XmlParser, AttributesBothQuoteStyles) {
  auto root = must_parse(R"(<a x="1" y='two'/>)");
  ASSERT_TRUE(root);
  EXPECT_EQ(*root->find_attr("x"), "1");
  EXPECT_EQ(*root->find_attr("y"), "two");
  EXPECT_EQ(root->find_attr("z"), nullptr);
}

TEST(XmlParser, NestedChildren) {
  auto root = must_parse("<a><b><c/></b><b/></a>");
  ASSERT_TRUE(root);
  ASSERT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->children()[0]->name(), "b");
  EXPECT_EQ(root->find_children("b").size(), 2u);
  EXPECT_NE(root->find_child("b"), nullptr);
  EXPECT_EQ(root->find_child("c"), nullptr);  // not a direct child
}

TEST(XmlParser, TextContent) {
  auto root = must_parse("<a>hello world</a>");
  ASSERT_TRUE(root);
  EXPECT_EQ(root->text(), "hello world");
}

TEST(XmlParser, WhitespaceOnlyTextDropped) {
  auto root = must_parse("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(root);
  EXPECT_TRUE(root->text().empty());
}

TEST(XmlParser, Entities) {
  auto root = must_parse("<a x=\"&lt;&gt;&amp;&quot;&apos;\">&#65;&#x42;</a>");
  ASSERT_TRUE(root);
  EXPECT_EQ(*root->find_attr("x"), "<>&\"'");
  EXPECT_EQ(root->text(), "AB");
}

TEST(XmlParser, Cdata) {
  auto root = must_parse("<a><![CDATA[1 < 2 && 3 > 2]]></a>");
  ASSERT_TRUE(root);
  EXPECT_EQ(root->text(), "1 < 2 && 3 > 2");
}

TEST(XmlParser, CommentsAndDeclarationSkipped) {
  auto root = must_parse(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>");
  ASSERT_TRUE(root);
  EXPECT_EQ(root->children().size(), 1u);
}

TEST(XmlParser, PositionsTracked) {
  auto root = must_parse("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(root);
  EXPECT_EQ(root->position().line, 1);
  EXPECT_EQ(root->children()[0]->position().line, 2);
  EXPECT_EQ(root->children()[0]->position().column, 3);
}

struct BadCase {
  const char* name;
  const char* text;
};

class XmlErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(XmlErrorTest, Rejected) {
  auto r = xml::parse(GetParam().text);
  EXPECT_FALSE(r.is_ok()) << "should reject: " << GetParam().text;
  if (!r.is_ok()) {
    EXPECT_NE(r.status().message().find("XML parse error"),
              std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, XmlErrorTest,
    ::testing::Values(
        BadCase{"empty", ""}, BadCase{"text_only", "hello"},
        BadCase{"unclosed", "<a>"}, BadCase{"mismatch", "<a></b>"},
        BadCase{"two_roots", "<a/><b/>"},
        BadCase{"content_after_root", "<a/>x"},
        BadCase{"bad_attr", "<a x></a>"},
        BadCase{"unquoted_attr", "<a x=1/>"},
        BadCase{"dup_attr", "<a x=\"1\" x=\"2\"/>"},
        BadCase{"unterminated_attr", "<a x=\"1/>"},
        BadCase{"lt_in_attr", "<a x=\"<\"/>"},
        BadCase{"bad_entity", "<a>&nope;</a>"},
        BadCase{"unterminated_entity", "<a>&amp</a>"},
        BadCase{"doctype", "<!DOCTYPE html><a/>"},
        BadCase{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadCase{"non_ascii_charref", "<a>&#300;</a>"}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      return info.param.name;
    });

TEST(XmlWriter, EscapesSpecials) {
  EXPECT_EQ(xml::escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
  EXPECT_EQ(xml::escape_attr("say \"hi\""), "say &quot;hi&quot;");
}

// Round-trip property: write(parse(x)) re-parses to an equivalent DOM.
void expect_equivalent(const xml::Element& a, const xml::Element& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.attributes().size(), b.attributes().size());
  for (const xml::Attribute& attr : a.attributes()) {
    const std::string* v = b.find_attr(attr.name);
    ASSERT_NE(v, nullptr) << attr.name;
    EXPECT_EQ(*v, attr.value);
  }
  ASSERT_EQ(a.children().size(), b.children().size());
  for (size_t i = 0; i < a.children().size(); ++i)
    expect_equivalent(*a.children()[i], *b.children()[i]);
}

class XmlRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRoundTripTest, WriteParseIsIdentity) {
  auto first = must_parse(GetParam());
  ASSERT_TRUE(first);
  std::string text = xml::write(*first);
  auto second = must_parse(text);
  ASSERT_TRUE(second) << text;
  expect_equivalent(*first, *second);
}

INSTANTIATE_TEST_SUITE_P(
    Docs, XmlRoundTripTest,
    ::testing::Values(
        "<a/>", "<a x=\"1\"/>", "<a><b/><c d='e&amp;f'/></a>",
        "<x><y z=\"&quot;&lt;\"><w/></y><y/></x>",
        "<p a=\"1\" b=\"2\" c=\"3\"><q><r><s t=\"deep\"/></r></q></p>"));

// Randomized round-trip: generate seeded random DOMs, write, re-parse,
// compare structurally.
namespace {

xml::ElementPtr random_element(support::SplitMix64& rng, int depth) {
  static const char* kNames[] = {"a", "b", "node", "x_y", "tag.1"};
  static const char* kValues[] = {"",       "1",      "hello world",
                                  "<&>\"'", "  pad  ", "a=b,c=d"};
  auto e = std::make_unique<xml::Element>(
      kNames[rng.next_below(std::size(kNames))]);
  int attrs = static_cast<int>(rng.next_below(4));
  for (int i = 0; i < attrs; ++i) {
    e->set_attr("k" + std::to_string(i),
                kValues[rng.next_below(std::size(kValues))]);
  }
  if (depth > 0) {
    int kids = static_cast<int>(rng.next_below(4));
    for (int i = 0; i < kids; ++i)
      e->adopt_child(random_element(rng, depth - 1));
  }
  if (e->children().empty() && rng.next_below(2) == 0)
    e->append_text(kValues[1 + rng.next_below(std::size(kValues) - 1)]);
  return e;
}

}  // namespace

class XmlRandomRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRandomRoundTripTest, WriteParseIsIdentity) {
  support::SplitMix64 rng(GetParam());
  xml::ElementPtr original = random_element(rng, 4);
  std::string text = xml::write(*original);
  auto parsed = xml::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string() << "\n" << text;
  expect_equivalent(*original, *parsed.value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRandomRoundTripTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(XmlDom, CloneIsDeep) {
  auto root = must_parse("<a x=\"1\"><b/></a>");
  ASSERT_TRUE(root);
  xml::ElementPtr copy = root->clone();
  copy->set_attr("x", "2");
  copy->add_child("c");
  EXPECT_EQ(*root->find_attr("x"), "1");
  EXPECT_EQ(root->children().size(), 1u);
  EXPECT_EQ(copy->children().size(), 2u);
}

TEST(XmlDom, RequireAttrDiagnostics) {
  auto root = must_parse("<a/>");
  auto r = root->require_attr("missing");
  EXPECT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("missing"), std::string::npos);
}

TEST(XmlParser, ParseFileMissing) {
  auto r = xml::parse_file("/nonexistent/path.xml");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), support::Code::kIo);
}

}  // namespace
