// Path equivalence (Fig. 1): the conversion-tool path — the XSPCL spec
// compiled to C++ glue by `xspclc codegen` at build time — and the
// load-time loader path must hand the runtime the identical task DAG.
// Both run the same canonical SP-IR pass pipeline, so the compiled
// task graphs must match byte for byte.
//
// The generated translation units (<name>_patheq.cpp) are produced by
// the build; see tests/CMakeLists.txt. Covered: both checked-in specs
// plus the three built-in applications via `xspclc emit-app`.
#include <gtest/gtest.h>

#include <string>

#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "sp/graph.hpp"
#include "xspcl/loader.hpp"

namespace xspcl_gen_pip_small {
sp::NodePtr build_graph();
}
namespace xspcl_gen_blur_skeleton {
sp::NodePtr build_graph();
}
namespace xspcl_gen_pip {
sp::NodePtr build_graph();
}
namespace xspcl_gen_jpip {
sp::NodePtr build_graph();
}
namespace xspcl_gen_blur {
sp::NodePtr build_graph();
}

namespace {

std::string taskdot_from_generated(sp::NodePtr graph) {
  components::register_standard_globally();
  auto prog = hinch::Program::build(*graph,
                                    hinch::ComponentRegistry::global());
  EXPECT_TRUE(prog.is_ok()) << prog.status().to_string();
  return prog.is_ok() ? prog.value()->task_graph_dot() : "";
}

std::string taskdot_from_file(const std::string& path) {
  components::register_standard_globally();
  auto prog = xspcl::build_program_from_file(
      path, hinch::ComponentRegistry::global());
  EXPECT_TRUE(prog.is_ok()) << path << ": " << prog.status().to_string();
  return prog.is_ok() ? prog.value()->task_graph_dot() : "";
}

TEST(PathEquivalence, PipSmallSpec) {
  std::string gen = taskdot_from_generated(xspcl_gen_pip_small::build_graph());
  std::string loaded =
      taskdot_from_file(std::string(PATHEQ_SPEC_DIR) + "/pip_small.xml");
  ASSERT_FALSE(gen.empty());
  EXPECT_EQ(gen, loaded);
}

TEST(PathEquivalence, BlurSkeletonSpec) {
  std::string gen =
      taskdot_from_generated(xspcl_gen_blur_skeleton::build_graph());
  std::string loaded =
      taskdot_from_file(std::string(PATHEQ_SPEC_DIR) + "/blur_skeleton.xml");
  ASSERT_FALSE(gen.empty());
  EXPECT_EQ(gen, loaded);
}

TEST(PathEquivalence, PipApp) {
  std::string gen = taskdot_from_generated(xspcl_gen_pip::build_graph());
  std::string loaded =
      taskdot_from_file(std::string(PATHEQ_GEN_DIR) + "/pip_app.xml");
  ASSERT_FALSE(gen.empty());
  EXPECT_EQ(gen, loaded);
}

TEST(PathEquivalence, JpipApp) {
  std::string gen = taskdot_from_generated(xspcl_gen_jpip::build_graph());
  std::string loaded =
      taskdot_from_file(std::string(PATHEQ_GEN_DIR) + "/jpip_app.xml");
  ASSERT_FALSE(gen.empty());
  EXPECT_EQ(gen, loaded);
}

TEST(PathEquivalence, BlurApp) {
  std::string gen = taskdot_from_generated(xspcl_gen_blur::build_graph());
  std::string loaded =
      taskdot_from_file(std::string(PATHEQ_GEN_DIR) + "/blur_app.xml");
  ASSERT_FALSE(gen.empty());
  EXPECT_EQ(gen, loaded);
}

}  // namespace
