// bench_server — multi-tenant server characterisation for the
// session-scoped runtime (docs/RUNTIME.md, "Session lifecycle").
//
// Legs:
//   throughput  N same-spec tenants, run two ways and timed end to end:
//                 sequential — the legacy one-run-at-a-time model: every
//                   run pays a full spec compile and its own pool
//                   spin-up/join (what `xspclc run` did before sessions);
//                 concurrent — one SessionExecutor + one SpecCache
//                   constructed inside the timed region, all N tenants
//                   admitted together (N-1 cache hits, one pool).
//               The gate (concurrent < sequential) holds even on one
//               core: the win is amortised compile + pool cost, with
//               parallel overlap on top where cores exist.
//   churn       one long-lived victim streams with per-frame timestamps
//               while short tenants are continuously opened, half of
//               them cancelled mid-flight, and drained. Reports the
//               sustained sessions/sec and the victim's p50/p99/max
//               inter-frame gap against a solo baseline.
//               Gate: the victim retires every iteration and its worst
//               inter-frame gap stays bounded — closing one session
//               never stalls another tenant's stream.
//
// Host wall clock, not simulated cycles: admission, teardown and cache
// behaviour are runtime properties the SpaceCAKE sim does not model.
//
// Usage: bench_server [--smoke] [output.json]  (default ./BENCH_server.json)
//   --smoke   shrink the run for CI (same gates)
#include <cinttypes>
#include <cstring>
#include <deque>

#include "bench_util.hpp"
#include "hinch/session.hpp"
#include "hinch/thread_executor.hpp"
#include "xspcl/spec_cache.hpp"

namespace {

bool g_smoke = false;

struct ServerScale {
  int workers = 4;
  int tenants = 8;           // N for the throughput comparison
  int64_t iters = 24;        // iterations per throughput tenant
  int64_t victim_iters = 600;
  int64_t churn_iters = 24;  // iterations per churn tenant
  int churn_inflight = 2;    // churn tenants kept open at once
  int reps = 3;              // best-of reps for the throughput legs
};

std::string tenant_spec(int64_t iters) {
  apps::BlurConfig c;
  c.width = 96;
  c.height = 64;
  c.frames = static_cast<int>(iters);
  c.kernel = 5;
  c.slices = 8;
  c.clip_frames = 4;
  return apps::blur_xspcl(c);
}

// One tenant on the shared executor, program built through the cache.
hinch::SessionPtr open_session(hinch::SessionExecutor& exec,
                               xspcl::SpecCache& cache,
                               const std::string& spec, int64_t iters,
                               bool record_frames) {
  auto prog =
      cache.build_program(spec, hinch::ComponentRegistry::global());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "bench_server: build failed: %s\n",
                 prog.status().to_string().c_str());
    std::abort();
  }
  hinch::SessionConfig cfg;
  cfg.run.iterations = iters;
  cfg.run.window = 2;
  cfg.name = "blur";
  cfg.record_frame_times = record_frames;
  return exec.submit(std::move(prog).take(), cfg);
}

// The legacy model: each run recompiles the spec and spins up (and
// joins) its own worker pool via run_on_threads.
double sequential_leg(const std::string& spec, const ServerScale& s) {
  auto t0 = bench::WallClock::now();
  for (int i = 0; i < s.tenants; ++i) {
    std::unique_ptr<hinch::Program> prog = bench::build_program(spec);
    hinch::RunConfig run;
    run.iterations = s.iters;
    run.window = 2;
    hinch::run_on_threads(*prog, run, s.workers);
  }
  return bench::ms_since(t0);
}

double concurrent_leg(const std::string& spec, const ServerScale& s,
                      xspcl::SpecCache::Stats* cache_stats) {
  auto t0 = bench::WallClock::now();
  hinch::SessionExecutor::Config pool;
  pool.workers = s.workers;
  hinch::SessionExecutor exec(pool);
  xspcl::SpecCache cache;
  std::vector<hinch::SessionPtr> sessions;
  sessions.reserve(static_cast<size_t>(s.tenants));
  for (int i = 0; i < s.tenants; ++i)
    sessions.push_back(open_session(exec, cache, spec, s.iters, false));
  for (const hinch::SessionPtr& sess : sessions) {
    hinch::SessionResult r = sess->wait();
    if (r.status != hinch::SessionStatus::kDone) {
      std::fprintf(stderr, "bench_server: tenant did not complete\n");
      std::abort();
    }
  }
  exec.shutdown();
  if (cache_stats != nullptr) *cache_stats = cache.stats();
  return bench::ms_since(t0);
}

// Inter-frame gaps (ms) from a session's completion stamps. Iterations
// retired in one scheduler batch share a stamp, so zero gaps are normal.
std::vector<double> frame_gaps_ms(const hinch::SessionResult& r) {
  std::vector<double> gaps;
  gaps.reserve(r.frame_done_ns.size());
  uint64_t prev = 0;
  for (uint64_t t : r.frame_done_ns) {
    gaps.push_back(static_cast<double>(t - prev) / 1e6);
    prev = t;
  }
  return gaps;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double pos = p * static_cast<double>(v.size() - 1);
  size_t idx = static_cast<size_t>(pos);
  return v[idx];
}

struct ChurnReport {
  int opened = 0;
  int completed = 0;
  int cancelled = 0;
  double wall_ms = 0;
  double sessions_per_sec = 0;
  xspcl::SpecCache::Stats cache;
  hinch::SessionResult victim;
};

ChurnReport churn_leg(const std::string& victim_spec,
                      const std::string& churn_spec,
                      const ServerScale& s) {
  hinch::SessionExecutor::Config pool;
  pool.workers = s.workers;
  hinch::SessionExecutor exec(pool);
  xspcl::SpecCache cache;

  ChurnReport rep;
  auto t0 = bench::WallClock::now();
  hinch::SessionPtr victim =
      open_session(exec, cache, victim_spec, s.victim_iters, true);

  // Keep a small set of churn tenants in flight until the victim
  // finishes; every other one is cancelled mid-run so teardown of both
  // flavours (drain-to-done and cancel-and-drop) overlaps the victim.
  std::deque<hinch::SessionPtr> inflight;
  while (!victim->finished() || !inflight.empty()) {
    while (!victim->finished() &&
           static_cast<int>(inflight.size()) < s.churn_inflight) {
      hinch::SessionPtr c =
          open_session(exec, cache, churn_spec, s.churn_iters, false);
      ++rep.opened;
      if (rep.opened % 2 == 0) exec.cancel(c);
      inflight.push_back(std::move(c));
    }
    hinch::SessionResult r = inflight.front()->wait();
    inflight.pop_front();
    if (r.status == hinch::SessionStatus::kCancelled)
      ++rep.cancelled;
    else
      ++rep.completed;
  }
  rep.victim = victim->wait();
  rep.wall_ms = bench::ms_since(t0);
  rep.sessions_per_sec = (rep.completed + rep.cancelled) /
                         (rep.wall_ms / 1e3);
  rep.cache = cache.stats();
  exec.shutdown();
  return rep;
}

void write_json(const std::string& path, const ServerScale& s,
                double seq_ms, double conc_ms,
                const xspcl::SpecCache::Stats& conc_cache,
                const std::vector<double>& solo_gaps,
                const std::vector<double>& churn_gaps,
                const ChurnReport& churn, bool gate_throughput,
                bool gate_no_stall) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_server: cannot open '%s'\n", path.c_str());
    std::abort();
  }
  auto d = [](double v) { return support::format_double(v); };
  std::fprintf(f, "{\n  \"bench\": \"bench_server\",\n");
  std::fprintf(f, "  \"clock\": \"host_wall_clock\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
  std::fprintf(f,
               "  \"scale\": {\"workers\": %d, \"tenants\": %d, "
               "\"iters\": %" PRId64 ", \"victim_iters\": %" PRId64
               ", \"churn_iters\": %" PRId64 "},\n",
               s.workers, s.tenants, s.iters, s.victim_iters,
               s.churn_iters);
  std::fprintf(f,
               "  \"throughput\": {\"sequential_ms\": %s, "
               "\"concurrent_ms\": %s, \"speedup\": %s, "
               "\"concurrent_sessions_per_sec\": %s, "
               "\"spec_cache_hits\": %" PRIu64
               ", \"spec_cache_misses\": %" PRIu64 "},\n",
               d(seq_ms).c_str(), d(conc_ms).c_str(),
               d(seq_ms / conc_ms).c_str(),
               d(s.tenants / (conc_ms / 1e3)).c_str(), conc_cache.hits,
               conc_cache.misses);
  std::fprintf(f,
               "  \"churn\": {\"opened\": %d, \"completed\": %d, "
               "\"cancelled\": %d, \"wall_ms\": %s, "
               "\"sessions_per_sec\": %s, \"spec_cache_hits\": %" PRIu64
               ", \"spec_cache_misses\": %" PRIu64 "},\n",
               churn.opened, churn.completed, churn.cancelled,
               d(churn.wall_ms).c_str(),
               d(churn.sessions_per_sec).c_str(), churn.cache.hits,
               churn.cache.misses);
  std::fprintf(f,
               "  \"victim_frame_gap_ms\": {\"solo_p50\": %s, "
               "\"solo_p99\": %s, \"solo_max\": %s, \"churn_p50\": %s, "
               "\"churn_p99\": %s, \"churn_max\": %s},\n",
               d(percentile(solo_gaps, 0.50)).c_str(),
               d(percentile(solo_gaps, 0.99)).c_str(),
               d(percentile(solo_gaps, 1.0)).c_str(),
               d(percentile(churn_gaps, 0.50)).c_str(),
               d(percentile(churn_gaps, 0.99)).c_str(),
               d(percentile(churn_gaps, 1.0)).c_str());
  std::fprintf(f,
               "  \"gates\": {\"concurrent_beats_sequential\": %s, "
               "\"close_never_stalls\": %s}\n}\n",
               gate_throughput ? "true" : "false",
               gate_no_stall ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      g_smoke = true;
    else
      out = argv[i];
  }

  ServerScale s;
  if (g_smoke) {
    s.tenants = 6;
    s.iters = 12;
    s.victim_iters = 200;
    s.churn_iters = 12;
    s.reps = 2;
    std::printf("(smoke mode: reduced run, same gates)\n");
  }

  const std::string spec = tenant_spec(s.iters);
  const std::string victim_spec = tenant_spec(s.victim_iters);
  const std::string churn_spec = tenant_spec(s.churn_iters);
  components::register_standard_globally();

  // --- throughput: legacy sequential runs vs one multi-tenant server.
  // Reps interleave the legs (same rationale as bench::best_ms_pair) and
  // the best of each is reported.
  double seq_ms = 1e300, conc_ms = 1e300;
  xspcl::SpecCache::Stats conc_cache;
  sequential_leg(spec, s);  // warmup (page cache, lazy init)
  for (int rep = 0; rep < s.reps; ++rep) {
    seq_ms = std::min(seq_ms, sequential_leg(spec, s));
    xspcl::SpecCache::Stats stats;
    double ms = concurrent_leg(spec, s, &stats);
    if (ms < conc_ms) {
      conc_ms = ms;
      conc_cache = stats;
    }
  }
  std::printf(
      "throughput: %d tenants x %" PRId64
      " iters  sequential %.1f ms  concurrent %.1f ms  speedup %.2fx  "
      "(%.1f sessions/s, cache %" PRIu64 " hits / %" PRIu64 " misses)\n",
      s.tenants, s.iters, seq_ms, conc_ms, seq_ms / conc_ms,
      s.tenants / (conc_ms / 1e3), conc_cache.hits, conc_cache.misses);

  // --- victim solo baseline for the stall gate.
  std::vector<double> solo_gaps;
  {
    hinch::SessionExecutor::Config pool;
    pool.workers = s.workers;
    hinch::SessionExecutor exec(pool);
    xspcl::SpecCache cache;
    hinch::SessionPtr v =
        open_session(exec, cache, victim_spec, s.victim_iters, true);
    solo_gaps = frame_gaps_ms(v->wait());
    exec.shutdown();
  }

  // --- churn: open/cancel/drain neighbours while the victim streams.
  ChurnReport churn = churn_leg(victim_spec, churn_spec, s);
  std::vector<double> churn_gaps = frame_gaps_ms(churn.victim);
  std::printf(
      "churn: %d opened (%d completed, %d cancelled) in %.1f ms = %.1f "
      "sessions/s\n",
      churn.opened, churn.completed, churn.cancelled, churn.wall_ms,
      churn.sessions_per_sec);
  std::printf(
      "victim frame gap ms: solo p50 %.3f p99 %.3f max %.3f | churn p50 "
      "%.3f p99 %.3f max %.3f\n",
      percentile(solo_gaps, 0.50), percentile(solo_gaps, 0.99),
      percentile(solo_gaps, 1.0), percentile(churn_gaps, 0.50),
      percentile(churn_gaps, 0.99), percentile(churn_gaps, 1.0));

  // --- gates ---------------------------------------------------------
  bool gate_throughput = conc_ms < seq_ms;
  // "Closing one session never stalls another": the victim must retire
  // every iteration, and its worst inter-frame gap under churn must stay
  // bounded. The bound is generous (contention on a loaded host is fine;
  // a teardown that blocks the pool shows up as a multi-second gap or a
  // victim that never finishes).
  double stall_bound_ms =
      std::max(250.0, 50.0 * percentile(solo_gaps, 0.99));
  bool gate_no_stall =
      churn.victim.status == hinch::SessionStatus::kDone &&
      churn.victim.iterations_done == s.victim_iters &&
      percentile(churn_gaps, 1.0) < stall_bound_ms;

  write_json(out, s, seq_ms, conc_ms, conc_cache, solo_gaps, churn_gaps,
             churn, gate_throughput, gate_no_stall);

  bool ok = true;
  if (!gate_throughput) {
    std::fprintf(stderr,
                 "GATE FAILED: %d concurrent sessions (%.1f ms) did not "
                 "beat %d sequential runs (%.1f ms)\n",
                 s.tenants, conc_ms, s.tenants, seq_ms);
    ok = false;
  }
  if (!gate_no_stall) {
    std::fprintf(stderr,
                 "GATE FAILED: victim stalled under churn (status=%s, "
                 "iters=%" PRId64 "/%" PRId64
                 ", max gap %.1f ms, bound %.1f ms)\n",
                 hinch::session_status_name(churn.victim.status),
                 churn.victim.iterations_done, s.victim_iters,
                 percentile(churn_gaps, 1.0), stall_bound_ms);
    ok = false;
  }
  std::printf("gates: concurrent_beats_sequential=%s "
              "close_never_stalls=%s\n",
              gate_throughput ? "pass" : "FAIL",
              gate_no_stall ? "pass" : "FAIL");
  return ok ? 0 : 1;
}
