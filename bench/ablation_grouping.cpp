// Ablation — component grouping (§4.1).
//
// The paper attributes JPiP's 18% XSPCL overhead to cache misses from
// splitting fused kernels into stream-connected components, and proposes
// "grouping several components into a group that is scheduled as one
// entity. The consumer components in this group will then be run
// immediately after the producers, when the data is still in the cache.
// However, this approach reduces the amount of parallelism ... Choosing
// the right balance is subject to further research."
//
// This bench runs that proposed experiment: JPiP with the decode chain
// (entropy decode + the three IDCTs) fused into one <group> — the
// coefficient image is consumed immediately instead of parking in a
// 5-slot stream — vs the plain version, at 1 core (sequential overhead)
// and at more cores (parallel cost of the lost IDCT slicing).
//
// The (variant x cores) grid plus the hand-written sequential baseline
// run on the parallel sweep driver.
#include "bench_util.hpp"
#include "perf/fusion.hpp"

namespace {

struct Meas {
  uint64_t cycles;
  uint64_t fetches;
};

struct AutoMeas {
  uint64_t cycles;
  uint64_t fetches;
  bool fused;  // did the cost model take any fusion at this core count?
};

}  // namespace

int main() {
  std::printf("Ablation: component grouping (JPiP-1, %d frames)\n",
              bench::paper_jpip(1).frames);

  apps::JpipConfig plain_cfg = bench::paper_jpip(1);
  apps::JpipConfig grouped_cfg = plain_cfg;
  grouped_cfg.grouped = true;
  const std::string plain_spec = apps::jpip_xspcl(plain_cfg);
  const std::string grouped_spec = apps::jpip_xspcl(grouped_cfg);

  const std::vector<int> core_counts = {1, 2, 4, 9};
  // Point 0: hand-written sequential baseline. Then, per core count,
  // the plain and grouped XSPCL variants (sync costs off at 1 core,
  // matching Fig. 8/9 conventions).
  std::vector<Meas> meas = bench::parallel_sweep(
      1 + 2 * static_cast<int>(core_counts.size()), [&](int idx) -> Meas {
        if (idx == 0) {
          apps::SeqResult seq = apps::run_jpip_sequential(plain_cfg);
          return Meas{seq.cycles, seq.mem.mem_fetches};
        }
        int cores = core_counts[static_cast<size_t>((idx - 1) / 2)];
        bool grouped = (idx - 1) % 2 != 0;
        auto prog =
            bench::build_program(grouped ? grouped_spec : plain_spec);
        hinch::SimResult r =
            bench::run_sim(*prog, plain_cfg.frames, cores, cores > 1);
        return Meas{r.total_cycles, r.mem.mem_fetches};
      });

  const Meas& seq = meas[0];
  std::printf("%-10s %14s %14s %14s\n", "cores", "plain Mcyc", "grouped Mcyc",
              "group vs plain");
  for (size_t i = 0; i < core_counts.size(); ++i) {
    int cores = core_counts[i];
    const Meas& p = meas[1 + 2 * i];
    const Meas& g = meas[2 + 2 * i];
    std::printf("%-10d %14.1f %14.1f %+13.1f%%\n", cores,
                bench::mcycles(p.cycles), bench::mcycles(g.cycles),
                100.0 * (static_cast<double>(g.cycles) /
                             static_cast<double>(p.cycles) -
                         1.0));
    if (cores == 1) {
      std::printf("  1-core overhead vs hand-written sequential: plain "
                  "%.1f%%, grouped %.1f%%\n",
                  100.0 * (static_cast<double>(p.cycles) /
                               static_cast<double>(seq.cycles) -
                           1.0),
                  100.0 * (static_cast<double>(g.cycles) /
                               static_cast<double>(seq.cycles) -
                           1.0));
      std::printf("  L2 misses: plain %llu, grouped %llu\n",
                  static_cast<unsigned long long>(p.fetches),
                  static_cast<unsigned long long>(g.fetches));
    }
  }
  std::printf(
      "\nExpected: grouping cuts the 1-core overhead and L2 misses (the\n"
      "coefficients are consumed while cache-warm) but loses badly at\n"
      "high core counts — the fused decode+IDCT task is unsliced, the\n"
      "paper's \"reduces the amount of parallelism\" caveat. Choosing the\n"
      "balance is exactly the further research §4.1 calls for.\n");

  // --- auto-grouping ---------------------------------------------------------
  //
  // The same experiment with the balance chosen automatically: the
  // plain (ungrouped) spec run through the auto-group pass, each fusion
  // priced by the perf cost model (link footprint vs the simulated L2,
  // §4.1) at that core count. Link footprints come from one shared
  // 2-frame profiling run of the unfused program.
  components::register_standard_globally();
  auto graph = xspcl::load_string(plain_spec);
  if (!graph.is_ok()) {
    std::fprintf(stderr, "ablation_grouping: %s\n",
                 graph.status().to_string().c_str());
    return 1;
  }
  auto bytes = perf::measure_stream_slot_bytes(
      *graph.value(), hinch::ComponentRegistry::global());
  if (!bytes.is_ok()) {
    std::fprintf(stderr, "ablation_grouping: %s\n",
                 bytes.status().to_string().c_str());
    return 1;
  }

  std::vector<AutoMeas> auto_meas = bench::parallel_sweep(
      static_cast<int>(core_counts.size()), [&](int idx) -> AutoMeas {
        int cores = core_counts[static_cast<size_t>(idx)];
        perf::FusionModel model;
        model.cores = cores;
        hinch::BuildConfig config;
        config.passes.auto_group = true;
        config.passes.advisor =
            perf::make_fusion_advisor(bytes.value(), model);
        auto prog = hinch::Program::build(
            *graph.value(), hinch::ComponentRegistry::global(), config);
        if (!prog.is_ok()) {
          std::fprintf(stderr, "ablation_grouping: %s\n",
                       prog.status().to_string().c_str());
          std::abort();
        }
        bool fused = false;
        for (const hinch::Task& t : prog.value()->tasks())
          if (t.components.size() > 1) fused = true;
        hinch::SimResult r = bench::run_sim(*prog.value(), plain_cfg.frames,
                                            cores, cores > 1);
        return AutoMeas{r.total_cycles, r.mem.mem_fetches, fused};
      });

  std::printf("\nAuto-grouping (cost-model-driven pass, plain spec):\n");
  std::printf("%-10s %14s %14s %7s\n", "cores", "auto Mcyc", "vs plain",
              "fused");
  for (size_t i = 0; i < core_counts.size(); ++i) {
    const Meas& p = meas[1 + 2 * i];
    const AutoMeas& a = auto_meas[i];
    std::printf("%-10d %14.1f %+13.1f%% %7s\n", core_counts[i],
                bench::mcycles(a.cycles),
                100.0 * (static_cast<double>(a.cycles) /
                             static_cast<double>(p.cycles) -
                         1.0),
                a.fused ? "yes" : "no");
    if (core_counts[i] == 1) {
      std::printf("  1-core overhead vs hand-written sequential: auto "
                  "%.1f%% (plain %.1f%%)\n",
                  100.0 * (static_cast<double>(a.cycles) /
                               static_cast<double>(seq.cycles) -
                           1.0),
                  100.0 * (static_cast<double>(p.cycles) /
                               static_cast<double>(seq.cycles) -
                           1.0));
      std::printf("  L2 misses: auto %llu (plain %llu)\n",
                  static_cast<unsigned long long>(a.fetches),
                  static_cast<unsigned long long>(p.fetches));
    }
  }
  std::printf(
      "\nExpected: the model fuses the decode chains at 1 core (matching\n"
      "the manual <group> numbers above) and declines once the forfeited\n"
      "IDCT slicing would cost more than the cache-miss savings.\n");
  bench::teardown();
  return 0;
}
