// Ablation — component grouping (§4.1).
//
// The paper attributes JPiP's 18% XSPCL overhead to cache misses from
// splitting fused kernels into stream-connected components, and proposes
// "grouping several components into a group that is scheduled as one
// entity. The consumer components in this group will then be run
// immediately after the producers, when the data is still in the cache.
// However, this approach reduces the amount of parallelism ... Choosing
// the right balance is subject to further research."
//
// This bench runs that proposed experiment: JPiP with the decode chain
// (entropy decode + the three IDCTs) fused into one <group> — the
// coefficient image is consumed immediately instead of parking in a
// 5-slot stream — vs the plain version, at 1 core (sequential overhead)
// and at more cores (parallel cost of the lost IDCT slicing).
#include "bench_util.hpp"

int main() {
  std::printf("Ablation: component grouping (JPiP-1, %d frames)\n",
              bench::paper_jpip(1).frames);

  apps::JpipConfig plain_cfg = bench::paper_jpip(1);
  apps::JpipConfig grouped_cfg = plain_cfg;
  grouped_cfg.grouped = true;

  apps::SeqResult seq = apps::run_jpip_sequential(plain_cfg);
  auto plain = bench::build_program(apps::jpip_xspcl(plain_cfg));
  auto grouped = bench::build_program(apps::jpip_xspcl(grouped_cfg));

  std::printf("%-10s %14s %14s %14s\n", "cores", "plain Mcyc", "grouped Mcyc",
              "group vs plain");
  for (int cores : {1, 2, 4, 9}) {
    hinch::SimResult p =
        bench::run_sim(*plain, plain_cfg.frames, cores, cores > 1);
    hinch::SimResult g =
        bench::run_sim(*grouped, grouped_cfg.frames, cores, cores > 1);
    std::printf("%-10d %14.1f %14.1f %+13.1f%%\n", cores,
                bench::mcycles(p.total_cycles), bench::mcycles(g.total_cycles),
                100.0 * (static_cast<double>(g.total_cycles) /
                             static_cast<double>(p.total_cycles) -
                         1.0));
    if (cores == 1) {
      std::printf("  1-core overhead vs hand-written sequential: plain "
                  "%.1f%%, grouped %.1f%%\n",
                  100.0 * (static_cast<double>(p.total_cycles) /
                               static_cast<double>(seq.cycles) -
                           1.0),
                  100.0 * (static_cast<double>(g.total_cycles) /
                               static_cast<double>(seq.cycles) -
                           1.0));
      std::printf("  L2 misses: plain %llu, grouped %llu\n",
                  static_cast<unsigned long long>(p.mem.mem_fetches),
                  static_cast<unsigned long long>(g.mem.mem_fetches));
    }
  }
  std::printf(
      "\nExpected: grouping cuts the 1-core overhead and L2 misses (the\n"
      "coefficients are consumed while cache-warm) but loses badly at\n"
      "high core counts — the fused decode+IDCT task is unsliced, the\n"
      "paper's \"reduces the amount of parallelism\" caveat. Choosing the\n"
      "balance is exactly the further research §4.1 calls for.\n");
  bench::teardown();
  return 0;
}
