// Ablation — component grouping (§4.1).
//
// The paper attributes JPiP's 18% XSPCL overhead to cache misses from
// splitting fused kernels into stream-connected components, and proposes
// "grouping several components into a group that is scheduled as one
// entity. The consumer components in this group will then be run
// immediately after the producers, when the data is still in the cache.
// However, this approach reduces the amount of parallelism ... Choosing
// the right balance is subject to further research."
//
// This bench runs that proposed experiment: JPiP with the decode chain
// (entropy decode + the three IDCTs) fused into one <group> — the
// coefficient image is consumed immediately instead of parking in a
// 5-slot stream — vs the plain version, at 1 core (sequential overhead)
// and at more cores (parallel cost of the lost IDCT slicing).
//
// The (variant x cores) grid plus the hand-written sequential baseline
// run on the parallel sweep driver.
#include "bench_util.hpp"

namespace {

struct Meas {
  uint64_t cycles;
  uint64_t fetches;
};

}  // namespace

int main() {
  std::printf("Ablation: component grouping (JPiP-1, %d frames)\n",
              bench::paper_jpip(1).frames);

  apps::JpipConfig plain_cfg = bench::paper_jpip(1);
  apps::JpipConfig grouped_cfg = plain_cfg;
  grouped_cfg.grouped = true;
  const std::string plain_spec = apps::jpip_xspcl(plain_cfg);
  const std::string grouped_spec = apps::jpip_xspcl(grouped_cfg);

  const std::vector<int> core_counts = {1, 2, 4, 9};
  // Point 0: hand-written sequential baseline. Then, per core count,
  // the plain and grouped XSPCL variants (sync costs off at 1 core,
  // matching Fig. 8/9 conventions).
  std::vector<Meas> meas = bench::parallel_sweep(
      1 + 2 * static_cast<int>(core_counts.size()), [&](int idx) -> Meas {
        if (idx == 0) {
          apps::SeqResult seq = apps::run_jpip_sequential(plain_cfg);
          return Meas{seq.cycles, seq.mem.mem_fetches};
        }
        int cores = core_counts[static_cast<size_t>((idx - 1) / 2)];
        bool grouped = (idx - 1) % 2 != 0;
        auto prog =
            bench::build_program(grouped ? grouped_spec : plain_spec);
        hinch::SimResult r =
            bench::run_sim(*prog, plain_cfg.frames, cores, cores > 1);
        return Meas{r.total_cycles, r.mem.mem_fetches};
      });

  const Meas& seq = meas[0];
  std::printf("%-10s %14s %14s %14s\n", "cores", "plain Mcyc", "grouped Mcyc",
              "group vs plain");
  for (size_t i = 0; i < core_counts.size(); ++i) {
    int cores = core_counts[i];
    const Meas& p = meas[1 + 2 * i];
    const Meas& g = meas[2 + 2 * i];
    std::printf("%-10d %14.1f %14.1f %+13.1f%%\n", cores,
                bench::mcycles(p.cycles), bench::mcycles(g.cycles),
                100.0 * (static_cast<double>(g.cycles) /
                             static_cast<double>(p.cycles) -
                         1.0));
    if (cores == 1) {
      std::printf("  1-core overhead vs hand-written sequential: plain "
                  "%.1f%%, grouped %.1f%%\n",
                  100.0 * (static_cast<double>(p.cycles) /
                               static_cast<double>(seq.cycles) -
                           1.0),
                  100.0 * (static_cast<double>(g.cycles) /
                               static_cast<double>(seq.cycles) -
                           1.0));
      std::printf("  L2 misses: plain %llu, grouped %llu\n",
                  static_cast<unsigned long long>(p.fetches),
                  static_cast<unsigned long long>(g.fetches));
    }
  }
  std::printf(
      "\nExpected: grouping cuts the 1-core overhead and L2 misses (the\n"
      "coefficients are consumed while cache-warm) but loses badly at\n"
      "high core counts — the fused decode+IDCT task is unsliced, the\n"
      "paper's \"reduces the amount of parallelism\" caveat. Choosing the\n"
      "balance is exactly the further research §4.1 calls for.\n");
  bench::teardown();
  return 0;
}
