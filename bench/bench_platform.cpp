// Multi-tile platform scaling bench — the "break the 63-core ceiling"
// characterization (ROADMAP: scaling figures past one tile).
//
// Three axes, all in simulated cycles on the same recorded workload:
//
//   speedup_curve  JPiP-1 speedup over 1 core at 1..256 cores on a
//                  single tile — the curve the old `cores < 64` guard
//                  cut off at 63. Engine equivalence (flat vs list) is
//                  asserted at the 64/256-core points.
//   tile_scaling   64 cores arranged as 1/2/4/8/16 tiles with the total
//                  L2 capacity held fixed (16 MiB split per tile,
//                  crossbar, 64 cyc/chunk/hop) — what the interconnect
//                  costs once the die is partitioned.
//   dispatch       a 2-tile heterogeneous platform (4 baseline cores +
//                  4 half-frequency cores) under the three dispatch
//                  policies — the hetero-placement ablation.
//
// The expensive part — executing the media kernels — happens once, in
// one 1-core recording run; every sweep point re-simulates from the
// charge trace (replay is keyed by (task, iteration), so it is valid
// across core counts and platforms). That is what makes the 256-core
// points affordable.
//
// Emits BENCH_platform.json (simulated cycles, not wall-clock).
// `bench_platform --smoke` (CI) runs fewer frames with the same gates.
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/platform.hpp"
#include "support/strings.hpp"

namespace {

struct Meas {
  uint64_t cycles = 0;
  sim::MemStats mem;
  double utilization = 0;
  uint64_t jobs = 0;
  std::vector<uint64_t> tile_jobs;  // empty on the legacy (no-platform) path
};

// One replayed sweep point. The Program is rebuilt per point: components
// are stateful during execution, so points never share one (the same
// rule as every parallel_sweep harness, applied here to a serial loop —
// the big-N points each hold a few hundred MB of cache-model state, so
// running them one at a time bounds peak memory).
Meas replay_point(const std::string& spec, int64_t frames,
                  const hinch::ChargeTrace& trace, int cores,
                  const sim::PlatformConfig& platform, sim::LruImpl impl) {
  auto prog = bench::build_program(spec);
  hinch::RunConfig run;
  run.iterations = frames;
  hinch::SimParams sim;
  sim.cores = platform.empty() ? cores : 1;  // platform carries the count
  sim.platform = platform;
  sim.cache.lru_impl = impl;
  sim.replay_trace = const_cast<hinch::ChargeTrace*>(&trace);
  hinch::SimResult r = hinch::run_on_sim(*prog, run, sim);
  return {r.total_cycles, r.mem, r.utilization(), r.jobs, r.tile_jobs};
}

// `tiles` tiles of `cores_per_tile` baseline cores with the *total* L2
// capacity pinned to 16 MiB — splitting the die must not grow the cache.
sim::PlatformConfig split_die(int tiles, int cores_per_tile) {
  sim::PlatformConfig p = sim::PlatformConfig::homogeneous(tiles, cores_per_tile);
  p.name = "split" + std::to_string(tiles);
  for (sim::TileSpec& t : p.tiles)
    t.l2_bytes = (16ull << 20) / static_cast<uint64_t>(tiles);
  return p;
}

sim::PlatformConfig hetero_2tile(sim::DispatchPolicy dispatch) {
  sim::PlatformConfig p;
  p.name = "hetero2";
  p.classes = {{"fast", 1.0}, {"slow", 2.0}};
  // The slow tile gets the low core indices on purpose: legacy
  // lowest-core dispatch then lands work on the half-frequency cores
  // first, which is exactly the placement mistake fastest-first fixes.
  p.tiles = {{4, 1, 8ull << 20}, {4, 0, 8ull << 20}};
  p.dispatch = dispatch;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_platform.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out = argv[i];
  }

  apps::JpipConfig cfg = bench::paper_jpip(1);
  if (smoke) cfg.frames = 4;
  std::printf("Platform scaling bench (JPiP-1, %d frames%s)\n", cfg.frames,
              smoke ? ", smoke" : "");
  const std::string spec = apps::jpip_xspcl(cfg);

  // Record once with the kernels executing; every point below replays.
  hinch::ChargeTrace trace;
  uint64_t t1 = 0;
  {
    auto prog = bench::build_program(spec);
    hinch::RunConfig run;
    run.iterations = cfg.frames;
    hinch::SimParams sim;
    sim.cores = 1;
    sim.record_trace = &trace;
    t1 = hinch::run_on_sim(*prog, run, sim).total_cycles;
  }
  std::printf("recorded 1-core baseline: %.1f Mcyc, %zu jobs\n\n",
              bench::mcycles(t1), trace.jobs.size());

  bool ok = true;
  auto gate = [&ok](bool cond, const char* msg) {
    if (!cond) {
      std::fprintf(stderr, "bench_platform: FAIL %s\n", msg);
      ok = false;
    }
  };

  // --- speedup curve to 256 cores -------------------------------------------
  const std::vector<int> curve_cores = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  std::vector<Meas> curve;
  std::printf("%8s %12s %8s %12s\n", "cores", "Mcycles", "speedup", "util");
  for (int cores : curve_cores) {
    Meas m = replay_point(spec, cfg.frames, trace, cores, {},
                          sim::LruImpl::kFlat);
    if (cores == 64 || cores == 256) {
      Meas list = replay_point(spec, cfg.frames, trace, cores, {},
                               sim::LruImpl::kListReference);
      gate(m.cycles == list.cycles && m.mem == list.mem,
           "flat and list engines disagree past the old 63-core ceiling");
    }
    curve.push_back(m);
    std::printf("%8d %12.1f %7.2fx %11.1f%%\n", cores,
                bench::mcycles(m.cycles),
                static_cast<double>(t1) / static_cast<double>(m.cycles),
                100.0 * m.utilization);
  }
  gate(curve[0].cycles == t1, "1-core replay diverges from the recording");
  gate(curve.back().cycles <= curve[0].cycles,
       "256 cores slower than 1 core");

  // Single tile of 64 cores expressed as a platform must be cycle-exact
  // with the legacy 64-core model — the "platform as data" default.
  {
    Meas legacy = replay_point(spec, cfg.frames, trace, 64, {},
                               sim::LruImpl::kFlat);
    Meas platform = replay_point(spec, cfg.frames, trace, 0, split_die(1, 64),
                                 sim::LruImpl::kFlat);
    gate(legacy.cycles == platform.cycles && legacy.mem == platform.mem,
         "one-tile platform diverges from the legacy model");
  }

  // --- tile-count scaling at 64 cores ---------------------------------------
  const std::vector<int> tile_counts = {1, 2, 4, 8, 16};
  std::vector<Meas> tiled;
  std::printf("\n%8s %12s %12s %14s\n", "tiles", "Mcycles", "remote_hits",
              "l2_invals");
  for (int tiles : tile_counts) {
    Meas m = replay_point(spec, cfg.frames, trace, 0,
                          split_die(tiles, 64 / tiles), sim::LruImpl::kFlat);
    tiled.push_back(m);
    std::printf("%8d %12.1f %12llu %14llu\n", tiles,
                bench::mcycles(m.cycles),
                static_cast<unsigned long long>(m.mem.remote_hits),
                static_cast<unsigned long long>(m.mem.l2_invalidations));
  }
  gate(tiled[0].mem.remote_hits == 0, "remote hits on a one-tile platform");
  gate(tiled[1].mem.remote_hits > 0,
       "no remote traffic on a two-tile platform");
  gate(tiled.back().cycles >= tiled[0].cycles,
       "16-way split beat the unified tile (interconnect charged < 0?)");

  // --- heterogeneous dispatch ablation --------------------------------------
  struct DispatchLeg {
    const char* name;
    sim::DispatchPolicy policy;
  };
  const std::vector<DispatchLeg> legs = {
      {"lowest", sim::DispatchPolicy::kLowestCore},
      {"fastest", sim::DispatchPolicy::kFastestFirst},
      {"affinity", sim::DispatchPolicy::kTileAffinity},
  };
  std::vector<Meas> dispatch;
  std::printf("\n%10s %12s %12s %12s\n", "dispatch", "Mcycles", "util",
              "fast_share");
  for (const DispatchLeg& leg : legs) {
    Meas m = replay_point(spec, cfg.frames, trace, 0, hetero_2tile(leg.policy),
                          sim::LruImpl::kFlat);
    dispatch.push_back(m);
    std::printf("%10s %12.1f %11.1f%% %11.1f%%\n", leg.name,
                bench::mcycles(m.cycles), 100.0 * m.utilization,
                100.0 * static_cast<double>(m.tile_jobs[1]) /
                    static_cast<double>(m.jobs));
  }
  // A saturated queue spills onto the slow tile under every policy
  // (a finishing core pulls the next job itself; the policy only
  // chooses when several cores sit idle), so neither total cycles nor
  // relative placement ranks the policies deterministically at this
  // scale — the policy mechanics are pinned by the
  // FastestFirstPrefersFastCores unit test instead. What the bench
  // gates: every leg executes the same jobs, and the fast tile ends up
  // with the majority of them (it drains twice as fast).
  gate(dispatch[0].jobs == dispatch[1].jobs &&
           dispatch[1].jobs == dispatch[2].jobs,
       "dispatch policies executed different job counts");
  for (const Meas& m : dispatch)
    gate(m.tile_jobs[1] > m.tile_jobs[0],
         "the fast tile did not take the majority of the jobs");

  // --- machine-readable artifact --------------------------------------------
  {
    FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_platform: cannot open %s\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"platform\",\n");
    std::fprintf(f, "  \"clock\": \"simulated_cycles\",\n");
    std::fprintf(f,
                 "  \"context\": {\"app\": \"jpip1\", \"frames\": %d, "
                 "\"baseline_cycles\": %llu, \"sampling\": "
                 "\"charge-trace replay\"},\n",
                 cfg.frames, static_cast<unsigned long long>(t1));
    std::fprintf(f, "  \"speedup_curve\": [\n");
    for (size_t i = 0; i < curve_cores.size(); ++i)
      std::fprintf(f,
                   "    {\"cores\": %d, \"cycles\": %llu, \"speedup\": %s, "
                   "\"utilization\": %s}%s\n",
                   curve_cores[i],
                   static_cast<unsigned long long>(curve[i].cycles),
                   support::format_double(static_cast<double>(t1) /
                                          static_cast<double>(curve[i].cycles))
                       .c_str(),
                   support::format_double(curve[i].utilization).c_str(),
                   i + 1 < curve_cores.size() ? "," : "");
    std::fprintf(f, "  ],\n  \"tile_scaling\": [\n");
    for (size_t i = 0; i < tile_counts.size(); ++i)
      std::fprintf(f,
                   "    {\"tiles\": %d, \"cores\": 64, \"cycles\": %llu, "
                   "\"remote_hits\": %llu, \"l2_invalidations\": %llu}%s\n",
                   tile_counts[i],
                   static_cast<unsigned long long>(tiled[i].cycles),
                   static_cast<unsigned long long>(tiled[i].mem.remote_hits),
                   static_cast<unsigned long long>(
                       tiled[i].mem.l2_invalidations),
                   i + 1 < tile_counts.size() ? "," : "");
    std::fprintf(f, "  ],\n  \"dispatch\": [\n");
    for (size_t i = 0; i < legs.size(); ++i)
      std::fprintf(f,
                   "    {\"policy\": \"%s\", \"cycles\": %llu, "
                   "\"utilization\": %s, \"jobs\": %llu, "
                   "\"fast_tile_jobs\": %llu}%s\n",
                   legs[i].name,
                   static_cast<unsigned long long>(dispatch[i].cycles),
                   support::format_double(dispatch[i].utilization).c_str(),
                   static_cast<unsigned long long>(dispatch[i].jobs),
                   static_cast<unsigned long long>(dispatch[i].tile_jobs[1]),
                   i + 1 < legs.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
  }

  bench::teardown();
  if (!ok) return 1;
  std::printf("OK\n");
  return 0;
}
