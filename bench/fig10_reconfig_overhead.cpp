// Figure 10 — Reconfiguration overhead (1..9 cores).
//
// Paper: run time of the reconfigurable variants (PiP-12, JPiP-12 toggle
// the second picture every 12 frames; Blur-35 switches 3x3 <-> 5x5 every
// 12 frames) divided by the average of the corresponding static
// applications. Reported shape: overhead below ~15%, growing with core
// count (quiescing drains the pipeline, so there is less parallelism to
// exploit on average), with small non-monotone jitter.
//
// The (series x variant x cores) grid runs on the parallel sweep
// driver; each point builds its own Program, results assemble by index.
#include "bench_util.hpp"

namespace {

constexpr int kMaxCores = 9;
constexpr int kVariants = 3;  // static A, static B, reconfigurable

struct SeriesDef {
  std::string name;
  std::string specs[kVariants];
  int64_t frames;
};

struct Series {
  std::string name;
  std::vector<double> overhead_pct;
};

}  // namespace

int main() {
  std::printf("Figure 10: reconfiguration overhead vs cores\n");
  std::printf("(reconfigurable runtime / mean of the two static variants)\n");

  std::vector<SeriesDef> defs;
  defs.push_back({"PiP-12",
                  {apps::pip_xspcl(bench::paper_pip(1)),
                   apps::pip_xspcl(bench::paper_pip(2)),
                   apps::pip_xspcl(bench::paper_pip(2, true))},
                  bench::paper_pip(1).frames});
  defs.push_back({"JPiP-12",
                  {apps::jpip_xspcl(bench::paper_jpip(1)),
                   apps::jpip_xspcl(bench::paper_jpip(2)),
                   apps::jpip_xspcl(bench::paper_jpip(2, true))},
                  bench::paper_jpip(1).frames});
  defs.push_back({"Blur-35",
                  {apps::blur_xspcl(bench::paper_blur(3)),
                   apps::blur_xspcl(bench::paper_blur(5)),
                   apps::blur_xspcl(bench::paper_blur(3, true))},
                  bench::paper_blur(3).frames});

  const int per_series = kVariants * kMaxCores;
  std::vector<uint64_t> cycles = bench::parallel_sweep(
      static_cast<int>(defs.size()) * per_series, [&](int idx) -> uint64_t {
        const SeriesDef& d = defs[static_cast<size_t>(idx / per_series)];
        int variant = (idx % per_series) / kMaxCores;
        int cores = (idx % kMaxCores) + 1;
        auto prog = bench::build_program(d.specs[variant]);
        return bench::run_sim(*prog, d.frames, cores).total_cycles;
      });

  std::vector<Series> series;
  for (size_t s = 0; s < defs.size(); ++s) {
    const uint64_t* row = &cycles[s * static_cast<size_t>(per_series)];
    Series out{defs[s].name, {}};
    for (int cores = 1; cores <= kMaxCores; ++cores) {
      double a = static_cast<double>(row[0 * kMaxCores + cores - 1]);
      double b = static_cast<double>(row[1 * kMaxCores + cores - 1]);
      double r = static_cast<double>(row[2 * kMaxCores + cores - 1]);
      out.overhead_pct.push_back(100.0 * (r / ((a + b) / 2) - 1.0));
    }
    series.push_back(std::move(out));
  }

  std::printf("%-8s", "cores");
  for (const Series& s : series) std::printf("%10s", s.name.c_str());
  std::printf("\n");
  for (int cores = 1; cores <= kMaxCores; ++cores) {
    std::printf("%-8d", cores);
    for (const Series& s : series)
      std::printf("%9.1f%%", s.overhead_pct[static_cast<size_t>(cores - 1)]);
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: overhead stays below ~15%% and grows with the\n"
      "number of cores (quiescing serializes the application).\n");
  bench::teardown();
  return 0;
}
