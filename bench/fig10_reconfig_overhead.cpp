// Figure 10 — Reconfiguration overhead (1..9 cores).
//
// Paper: run time of the reconfigurable variants (PiP-12, JPiP-12 toggle
// the second picture every 12 frames; Blur-35 switches 3x3 <-> 5x5 every
// 12 frames) divided by the average of the corresponding static
// applications. Reported shape: overhead below ~15%, growing with core
// count (quiescing drains the pipeline, so there is less parallelism to
// exploit on average), with small non-monotone jitter.
#include "bench_util.hpp"

namespace {

constexpr int kMaxCores = 9;

struct Series {
  std::string name;
  std::vector<double> overhead_pct;
};

}  // namespace

int main() {
  std::printf("Figure 10: reconfiguration overhead vs cores\n");
  std::printf("(reconfigurable runtime / mean of the two static variants)\n");

  std::vector<Series> series;

  {
    Series s{"PiP-12", {}};
    auto st1 = bench::build_program(apps::pip_xspcl(bench::paper_pip(1)));
    auto st2 = bench::build_program(apps::pip_xspcl(bench::paper_pip(2)));
    auto rec =
        bench::build_program(apps::pip_xspcl(bench::paper_pip(2, true)));
    int64_t frames = bench::paper_pip(1).frames;
    for (int cores = 1; cores <= kMaxCores; ++cores) {
      double a = static_cast<double>(
          bench::run_sim(*st1, frames, cores).total_cycles);
      double b = static_cast<double>(
          bench::run_sim(*st2, frames, cores).total_cycles);
      double r = static_cast<double>(
          bench::run_sim(*rec, frames, cores).total_cycles);
      s.overhead_pct.push_back(100.0 * (r / ((a + b) / 2) - 1.0));
    }
    series.push_back(std::move(s));
  }
  {
    Series s{"JPiP-12", {}};
    auto st1 = bench::build_program(apps::jpip_xspcl(bench::paper_jpip(1)));
    auto st2 = bench::build_program(apps::jpip_xspcl(bench::paper_jpip(2)));
    auto rec =
        bench::build_program(apps::jpip_xspcl(bench::paper_jpip(2, true)));
    int64_t frames = bench::paper_jpip(1).frames;
    for (int cores = 1; cores <= kMaxCores; ++cores) {
      double a = static_cast<double>(
          bench::run_sim(*st1, frames, cores).total_cycles);
      double b = static_cast<double>(
          bench::run_sim(*st2, frames, cores).total_cycles);
      double r = static_cast<double>(
          bench::run_sim(*rec, frames, cores).total_cycles);
      s.overhead_pct.push_back(100.0 * (r / ((a + b) / 2) - 1.0));
    }
    series.push_back(std::move(s));
  }
  {
    Series s{"Blur-35", {}};
    auto st3 = bench::build_program(apps::blur_xspcl(bench::paper_blur(3)));
    auto st5 = bench::build_program(apps::blur_xspcl(bench::paper_blur(5)));
    auto rec =
        bench::build_program(apps::blur_xspcl(bench::paper_blur(3, true)));
    int64_t frames = bench::paper_blur(3).frames;
    for (int cores = 1; cores <= kMaxCores; ++cores) {
      double a = static_cast<double>(
          bench::run_sim(*st3, frames, cores).total_cycles);
      double b = static_cast<double>(
          bench::run_sim(*st5, frames, cores).total_cycles);
      double r = static_cast<double>(
          bench::run_sim(*rec, frames, cores).total_cycles);
      s.overhead_pct.push_back(100.0 * (r / ((a + b) / 2) - 1.0));
    }
    series.push_back(std::move(s));
  }

  std::printf("%-8s", "cores");
  for (const Series& s : series) std::printf("%10s", s.name.c_str());
  std::printf("\n");
  for (int cores = 1; cores <= kMaxCores; ++cores) {
    std::printf("%-8d", cores);
    for (const Series& s : series)
      std::printf("%9.1f%%", s.overhead_pct[static_cast<size_t>(cores - 1)]);
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: overhead stays below ~15%% and grows with the\n"
      "number of cores (quiescing serializes the application).\n");
  bench::teardown();
  return 0;
}
