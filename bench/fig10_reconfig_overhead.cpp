// Figure 10 — Reconfiguration overhead (1..9 cores).
//
// Paper: run time of the reconfigurable variants (PiP-12, JPiP-12 toggle
// the second picture every 12 frames; Blur-35 switches 3x3 <-> 5x5 every
// 12 frames) divided by the average of the corresponding static
// applications. Reported shape: overhead below ~15%, growing with core
// count (quiescing drains the pipeline, so there is less parallelism to
// exploit on average), with small non-monotone jitter.
//
// The (series x variant x cores) grid runs on the parallel sweep
// driver; each point builds its own Program, results assemble by index.
#include "bench_util.hpp"

namespace {

constexpr int kMaxCores = 9;
constexpr int kVariants = 3;  // static A, static B, reconfigurable

struct SeriesDef {
  std::string name;
  std::string specs[kVariants];
  int64_t frames;
};

struct Series {
  std::string name;
  std::vector<double> overhead_pct;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--smoke") smoke = true;
  std::string trace_path =
      bench::parse_trace_flag(argc, argv, "fig10_trace.json");

  std::printf("Figure 10: reconfiguration overhead vs cores\n");
  std::printf("(reconfigurable runtime / mean of the two static variants)\n");
  if (smoke) std::printf("(smoke mode: reduced PiP-only grid)\n");

  std::vector<SeriesDef> defs;
  if (smoke) {
    // CI-scale grid: one series at a shrunken resolution, same shape.
    auto small = [](int pips, bool reconfigurable = false) {
      apps::PipConfig c = bench::paper_pip(pips, reconfigurable);
      c.width = 360;
      c.height = 288;
      c.frames = 24;
      c.slices = 4;
      c.clip_frames = 4;
      c.toggle_period = 6;
      return c;
    };
    defs.push_back({"PiP-12",
                    {apps::pip_xspcl(small(1)), apps::pip_xspcl(small(2)),
                     apps::pip_xspcl(small(2, true))},
                    small(1).frames});
  } else {
    defs.push_back({"PiP-12",
                    {apps::pip_xspcl(bench::paper_pip(1)),
                     apps::pip_xspcl(bench::paper_pip(2)),
                     apps::pip_xspcl(bench::paper_pip(2, true))},
                    bench::paper_pip(1).frames});
    defs.push_back({"JPiP-12",
                    {apps::jpip_xspcl(bench::paper_jpip(1)),
                     apps::jpip_xspcl(bench::paper_jpip(2)),
                     apps::jpip_xspcl(bench::paper_jpip(2, true))},
                    bench::paper_jpip(1).frames});
    defs.push_back({"Blur-35",
                    {apps::blur_xspcl(bench::paper_blur(3)),
                     apps::blur_xspcl(bench::paper_blur(5)),
                     apps::blur_xspcl(bench::paper_blur(3, true))},
                    bench::paper_blur(3).frames});
  }

  const int per_series = kVariants * kMaxCores;
  std::vector<uint64_t> cycles = bench::parallel_sweep(
      static_cast<int>(defs.size()) * per_series, [&](int idx) -> uint64_t {
        const SeriesDef& d = defs[static_cast<size_t>(idx / per_series)];
        int variant = (idx % per_series) / kMaxCores;
        int cores = (idx % kMaxCores) + 1;
        auto prog = bench::build_program(d.specs[variant]);
        return bench::run_sim(*prog, d.frames, cores).total_cycles;
      });

  std::vector<Series> series;
  for (size_t s = 0; s < defs.size(); ++s) {
    const uint64_t* row = &cycles[s * static_cast<size_t>(per_series)];
    Series out{defs[s].name, {}};
    for (int cores = 1; cores <= kMaxCores; ++cores) {
      double a = static_cast<double>(row[0 * kMaxCores + cores - 1]);
      double b = static_cast<double>(row[1 * kMaxCores + cores - 1]);
      double r = static_cast<double>(row[2 * kMaxCores + cores - 1]);
      out.overhead_pct.push_back(100.0 * (r / ((a + b) / 2) - 1.0));
    }
    series.push_back(std::move(out));
  }

  std::printf("%-8s", "cores");
  for (const Series& s : series) std::printf("%10s", s.name.c_str());
  std::printf("\n");
  for (int cores = 1; cores <= kMaxCores; ++cores) {
    std::printf("%-8d", cores);
    for (const Series& s : series)
      std::printf("%9.1f%%", s.overhead_pct[static_cast<size_t>(cores - 1)]);
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: overhead stays below ~15%% and grows with the\n"
      "number of cores (quiescing serializes the application).\n");

  if (!trace_path.empty()) {
    // Trace the reconfigurable PiP variant on 4 cores: the exported JSON
    // shows the quiesce/splice stall (a gap in every core's span row
    // around each "reconfiguration" marker).
    const SeriesDef& d = defs[0];
    bench::write_sim_trace(d.specs[2], d.frames, /*cores=*/4, trace_path);
  }
  bench::teardown();
  return 0;
}
