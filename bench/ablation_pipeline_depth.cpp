// Ablation — pipeline depth (iterations in flight).
//
// The paper pipelines 5 iterations (§4). This sweep shows the tradeoff
// the choice embodies: deeper windows expose more pipeline parallelism
// (better scaling) but enlarge the live working set (more stream slots
// -> more cache pressure), which is the §4.1 locality-vs-parallelism
// discussion in its purest form.
#include "bench_util.hpp"

int main() {
  std::printf("Ablation: pipeline depth (JPiP-1 and Blur-3, 4 cores)\n");
  std::printf("%-8s %18s %16s %18s %16s\n", "window", "JPiP Mcycles",
              "JPiP mem-fetch K", "Blur Mcycles", "Blur mem-fetch K");

  apps::JpipConfig jc = bench::paper_jpip(1);
  jc.frames = 16;
  apps::BlurConfig bc = bench::paper_blur(3);
  bc.frames = 48;
  for (int window = 1; window <= 8; ++window) {
    // Rebuild with a matching stream depth: the window is clamped to it.
    components::register_standard_globally();
    hinch::BuildConfig build;
    build.stream_depth = window;
    auto jp = xspcl::build_program(apps::jpip_xspcl(jc),
                                   hinch::ComponentRegistry::global(), build);
    auto bp = xspcl::build_program(apps::blur_xspcl(bc),
                                   hinch::ComponentRegistry::global(), build);
    SUP_CHECK(jp.is_ok() && bp.is_ok());
    hinch::SimResult jr =
        bench::run_sim(*jp.value(), jc.frames, 4, true, window);
    hinch::SimResult br =
        bench::run_sim(*bp.value(), bc.frames, 4, true, window);
    std::printf("%-8d %18.1f %16.1f %18.1f %16.1f\n", window,
                bench::mcycles(jr.total_cycles),
                static_cast<double>(jr.mem.mem_fetches) / 1e3,
                bench::mcycles(br.total_cycles),
                static_cast<double>(br.mem.mem_fetches) / 1e3);
  }
  std::printf(
      "\nExpected: cycles drop as the window opens (pipeline parallelism)\n"
      "with diminishing returns, while memory fetches grow as more\n"
      "iterations' buffers fight for the shared L2 — the §4.1\n"
      "locality-vs-parallelism axis.\n");
  bench::teardown();
  return 0;
}
