// Ablation — pipeline depth (iterations in flight).
//
// The paper pipelines 5 iterations (§4). This sweep shows the tradeoff
// the choice embodies: deeper windows expose more pipeline parallelism
// (better scaling) but enlarge the live working set (more stream slots
// -> more cache pressure), which is the §4.1 locality-vs-parallelism
// discussion in its purest form.
//
// The (window x app) grid runs on the parallel sweep driver; each point
// rebuilds its Program with a matching stream depth.
#include "bench_util.hpp"

namespace {

struct Meas {
  uint64_t cycles;
  uint64_t fetches;
};

}  // namespace

int main() {
  std::printf("Ablation: pipeline depth (JPiP-1 and Blur-3, 4 cores)\n");
  std::printf("%-8s %18s %16s %18s %16s\n", "window", "JPiP Mcycles",
              "JPiP mem-fetch K", "Blur Mcycles", "Blur mem-fetch K");

  apps::JpipConfig jc = bench::paper_jpip(1);
  jc.frames = 16;
  apps::BlurConfig bc = bench::paper_blur(3);
  bc.frames = 48;
  const std::string jpip_spec = apps::jpip_xspcl(jc);
  const std::string blur_spec = apps::blur_xspcl(bc);

  constexpr int kMaxWindow = 8;
  // Even points: JPiP; odd points: Blur. Window = idx / 2 + 1.
  std::vector<Meas> meas =
      bench::parallel_sweep(2 * kMaxWindow, [&](int idx) -> Meas {
        int window = idx / 2 + 1;
        bool jpip = idx % 2 == 0;
        // Rebuild with a matching stream depth: the window is clamped
        // to it.
        components::register_standard_globally();
        hinch::BuildConfig build;
        build.stream_depth = window;
        auto prog = xspcl::build_program(jpip ? jpip_spec : blur_spec,
                                         hinch::ComponentRegistry::global(),
                                         build);
        SUP_CHECK(prog.is_ok());
        hinch::SimResult r = bench::run_sim(
            *prog.value(), jpip ? jc.frames : bc.frames, 4, true, window);
        return Meas{r.total_cycles, r.mem.mem_fetches};
      });

  for (int window = 1; window <= kMaxWindow; ++window) {
    const Meas& jr = meas[static_cast<size_t>(2 * (window - 1))];
    const Meas& br = meas[static_cast<size_t>(2 * (window - 1) + 1)];
    std::printf("%-8d %18.1f %16.1f %18.1f %16.1f\n", window,
                bench::mcycles(jr.cycles),
                static_cast<double>(jr.fetches) / 1e3,
                bench::mcycles(br.cycles),
                static_cast<double>(br.fetches) / 1e3);
  }
  std::printf(
      "\nExpected: cycles drop as the window opens (pipeline parallelism)\n"
      "with diminishing returns, while memory fetches grow as more\n"
      "iterations' buffers fight for the shared L2 — the §4.1\n"
      "locality-vs-parallelism axis.\n");
  bench::teardown();
  return 0;
}
