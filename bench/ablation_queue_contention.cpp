// Ablation — central job queue contention.
//
// Hinch balances load through one central job queue (§1). Its lock is a
// serial resource; this sweep scales the lock cost to show when the
// design would stop scaling — the implicit assumption behind the paper's
// 9-core results.
#include "bench_util.hpp"

int main() {
  std::printf("Ablation: queue lock cost vs scaling (PiP-1, 48 frames)\n");
  std::printf("%-12s %12s %12s %12s %14s\n", "lock cycles", "1 core",
              "4 cores", "9 cores", "9-core wait%");

  apps::PipConfig c = bench::paper_pip(1);
  c.frames = 48;
  auto prog = bench::build_program(apps::pip_xspcl(c));

  for (uint64_t lock : {0ull, 60ull, 240ull, 960ull, 3840ull}) {
    double t[3];
    double wait_pct = 0;
    int idx = 0;
    for (int cores : {1, 4, 9}) {
      hinch::RunConfig run;
      run.iterations = c.frames;
      hinch::SimParams sim;
      sim.cores = cores;
      sim.queue_lock_cycles = lock;
      hinch::SimResult r = hinch::run_on_sim(*prog, run, sim);
      t[idx++] = bench::mcycles(r.total_cycles);
      if (cores == 9)
        wait_pct = 100.0 * static_cast<double>(r.queue_wait_cycles) /
                   static_cast<double>(r.total_cycles);
    }
    std::printf("%-12llu %12.1f %12.1f %12.1f %13.1f%%\n",
                static_cast<unsigned long long>(lock), t[0], t[1], t[2],
                wait_pct);
  }
  std::printf(
      "\nExpected: at the paper-scale lock cost the queue is invisible;\n"
      "inflated lock costs serialize the 9-core runs (rising wait%%).\n");
  bench::teardown();
  return 0;
}
