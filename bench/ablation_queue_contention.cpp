// Ablation — central job queue contention.
//
// Hinch balances load through one central job queue (§1). Its lock is a
// serial resource; this sweep scales the lock cost to show when the
// design would stop scaling — the implicit assumption behind the paper's
// 9-core results.
//
// The (lock cost x cores) grid runs on the parallel sweep driver; each
// point builds its own Program.
#include "bench_util.hpp"

namespace {

struct Meas {
  uint64_t total;
  uint64_t wait;
};

}  // namespace

int main() {
  std::printf("Ablation: queue lock cost vs scaling (PiP-1, 48 frames)\n");
  std::printf("%-12s %12s %12s %12s %14s\n", "lock cycles", "1 core",
              "4 cores", "9 cores", "9-core wait%");

  apps::PipConfig c = bench::paper_pip(1);
  c.frames = 48;
  const std::string spec = apps::pip_xspcl(c);

  const std::vector<uint64_t> locks = {0, 60, 240, 960, 3840};
  const std::vector<int> core_counts = {1, 4, 9};
  const int per_lock = static_cast<int>(core_counts.size());

  std::vector<Meas> meas = bench::parallel_sweep(
      static_cast<int>(locks.size()) * per_lock, [&](int idx) -> Meas {
        uint64_t lock = locks[static_cast<size_t>(idx / per_lock)];
        int cores = core_counts[static_cast<size_t>(idx % per_lock)];
        auto prog = bench::build_program(spec);
        hinch::RunConfig run;
        run.iterations = c.frames;
        hinch::SimParams sim;
        sim.cores = cores;
        sim.queue_lock_cycles = lock;
        hinch::SimResult r = hinch::run_on_sim(*prog, run, sim);
        return Meas{r.total_cycles, r.queue_wait_cycles};
      });

  for (size_t l = 0; l < locks.size(); ++l) {
    const Meas* row = &meas[l * static_cast<size_t>(per_lock)];
    double wait_pct = 100.0 * static_cast<double>(row[2].wait) /
                      static_cast<double>(row[2].total);
    std::printf("%-12llu %12.1f %12.1f %12.1f %13.1f%%\n",
                static_cast<unsigned long long>(locks[l]),
                bench::mcycles(row[0].total), bench::mcycles(row[1].total),
                bench::mcycles(row[2].total), wait_pct);
  }
  std::printf(
      "\nExpected: at the paper-scale lock cost the queue is invisible;\n"
      "inflated lock costs serialize the 9-core runs (rising wait%%).\n");
  bench::teardown();
  return 0;
}
