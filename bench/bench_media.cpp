// Media hot-path microbench: wall-clock (host) cost of the JPEG decode
// phases and the pixel kernels, before/after the table-driven Huffman +
// fixed-point AAN + border-split rewrites. Emits machine-readable
// BENCH_kernels.json so the perf trajectory is tracked PR over PR.
//
// This measures HOST time only. The simulated-cycle model the figure
// benches (fig8/9/10) report is a separate, deliberately unchanged layer
// — see docs/PERF.md for the split.
//
// Usage: bench_media [--smoke] [output.json]   (default ./BENCH_kernels.json)
//   --smoke: fewer reps and frames; same rows and gates, CI-friendly cost.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/mjpeg.hpp"
#include "bench_util.hpp"
#include "media/frame.hpp"
#include "media/jpeg.hpp"
#include "media/kernels.hpp"
#include "media/mjpeg.hpp"
#include "media/synth.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace {

using bench::best_ms;
using bench::best_ms_pair;

bench::BenchReport g_report("bench_media");

bool g_smoke = false;

// Best-of rep counts; --smoke trims them without changing what is
// measured (best-of-2 is noisier but the gates keep generous margins).
int reps(int full) { return g_smoke ? 2 : full; }

void add_row(const std::string& name, double baseline_ms,
             double optimized_ms, const std::string& unit) {
  g_report.add(name, baseline_ms, optimized_ms, unit);
}

// --- decode phases on a 1080p synthetic MJPEG stream ------------------------

void bench_decode() {
  const int kFrames = 4;
  media::SynthSpec spec{.seed = 42, .width = 1920, .height = 1080,
                        .format = media::PixelFormat::kYuv420};
  media::RawVideo raw = media::RawVideo::synthesize(spec, kFrames);
  auto clip = media::MjpegClip::encode(raw, 75);
  SUP_CHECK(clip.is_ok());
  const media::MjpegClip& mj = clip.value();
  std::printf("1080p synthetic MJPEG: %d frames, %zu compressed bytes\n",
              mj.frame_count(), mj.total_bytes());

  // Headline: full frame decode (entropy decode + IDCT of every plane),
  // old implementation (bit-at-a-time Huffman walk, float reference
  // IDCT, fresh buffers per frame) against the new hot path
  // (table-driven Huffman through the streaming buffer-reuse API,
  // fixed-point AAN IDCT).
  media::jpeg::CoeffImage reuse;
  std::vector<media::FramePtr> outs;
  auto idct_planes = [&](const media::jpeg::CoeffImage& img,
                         media::jpeg::IdctImpl impl) {
    if (outs.empty())
      for (int p = 0; p < media::plane_count(img.format); ++p)
        outs.push_back(media::make_frame(media::PixelFormat::kGray,
                                         img.comps[static_cast<size_t>(p)].width,
                                         img.comps[static_cast<size_t>(p)].height));
    for (int p = 0; p < media::plane_count(img.format); ++p) {
      const auto& cp = img.comps[static_cast<size_t>(p)];
      media::jpeg::idct_component(cp, outs[static_cast<size_t>(p)]->plane(0),
                                  0, cp.blocks_h, impl);
    }
  };
  auto decode_old = [&] {
    for (int i = 0; i < mj.frame_count(); ++i) {
      const auto& bytes = mj.frame(i);
      auto coeffs = media::jpeg::decode_to_coefficients(
          bytes.data(), bytes.size(), media::jpeg::HuffmanImpl::kBitSerial);
      SUP_CHECK(coeffs.is_ok());
      idct_planes(coeffs.value(), media::jpeg::IdctImpl::kFloatReference);
    }
  };
  auto decode_new = [&] {
    for (int i = 0; i < mj.frame_count(); ++i) {
      const auto& bytes = mj.frame(i);
      support::Status st = media::jpeg::decode_to_coefficients_into(
          bytes.data(), bytes.size(), &reuse,
          media::jpeg::HuffmanImpl::kLookupTable);
      SUP_CHECK(st.is_ok());
      idct_planes(reuse, media::jpeg::IdctImpl::kFixedPoint);
    }
  };
  auto [old_ms, new_ms] = best_ms_pair(reps(7), decode_old, decode_new);
  add_row("jpeg_decode_1080p", old_ms, new_ms,
          "full decode (entropy + IDCT) of 4 1080p frames");

  // Attribution row: entropy decode alone, same streaming buffer reuse
  // on both sides, so the delta is purely the bit-reader + lookup table.
  auto entropy_only = [&](media::jpeg::HuffmanImpl impl) {
    for (int i = 0; i < mj.frame_count(); ++i) {
      const auto& bytes = mj.frame(i);
      support::Status st = media::jpeg::decode_to_coefficients_into(
          bytes.data(), bytes.size(), &reuse, impl);
      SUP_CHECK(st.is_ok());
    }
  };
  auto [serial_stream, fast_stream] = best_ms_pair(
      reps(5), [&] { entropy_only(media::jpeg::HuffmanImpl::kBitSerial); },
      [&] { entropy_only(media::jpeg::HuffmanImpl::kLookupTable); });
  add_row("huffman_engine_only", serial_stream, fast_stream,
          "entropy decode of 4 1080p frames");

  // IDCT over the luma plane of one decoded frame.
  const auto& bytes = mj.frame(0);
  auto coeffs =
      media::jpeg::decode_to_coefficients(bytes.data(), bytes.size());
  SUP_CHECK(coeffs.is_ok());
  const media::jpeg::CoeffPlane& y = coeffs.value().comps[0];
  media::Frame out(media::PixelFormat::kGray, y.width, y.height);
  auto idct_all = [&](media::jpeg::IdctImpl impl) {
    media::jpeg::idct_component(y, out.plane(0), 0, y.blocks_h, impl);
  };
  auto [f_ref, fixed] = best_ms_pair(
      reps(10), [&] { idct_all(media::jpeg::IdctImpl::kFloatReference); },
      [&] { idct_all(media::jpeg::IdctImpl::kFixedPoint); });
  add_row("idct_1080p_luma", f_ref, fixed, "IDCT of one 1080p luma plane");
}

// --- pixel kernels ----------------------------------------------------------

// Naive clamp-everywhere references, mirroring the pre-optimization
// kernel bodies (same structure as tests/test_kernels_equiv.cpp).
int clampi(int v, int lo, int hi) { return v < lo ? lo : (v > hi ? hi : v); }

void ref_blur_h(media::ConstPlaneView src, media::PlaneView dst, int k) {
  const int16_t* taps = media::gaussian_taps(k);
  const int r = k / 2;
  for (int y = 0; y < dst.height; ++y) {
    const uint8_t* in = src.row(y);
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      int acc = 128;
      for (int t = -r; t <= r; ++t)
        acc += taps[t + r] * in[clampi(x + t, 0, src.width - 1)];
      out[x] = static_cast<uint8_t>(acc >> 8);
    }
  }
}

void ref_blur_v(media::ConstPlaneView src, media::PlaneView dst, int k) {
  const int16_t* taps = media::gaussian_taps(k);
  const int r = k / 2;
  for (int y = 0; y < dst.height; ++y) {
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      int acc = 128;
      for (int t = -r; t <= r; ++t)
        acc += taps[t + r] *
               src.row(clampi(y + t, 0, src.height - 1))[x];
      out[x] = static_cast<uint8_t>(acc >> 8);
    }
  }
}

void ref_downscale_box(media::ConstPlaneView src, media::PlaneView dst,
                       int factor) {
  for (int y = 0; y < dst.height; ++y) {
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      unsigned sum = 0;
      for (int dy = 0; dy < factor; ++dy) {
        const uint8_t* row = src.row(y * factor + dy) + x * factor;
        for (int dx = 0; dx < factor; ++dx) sum += row[dx];
      }
      unsigned n = static_cast<unsigned>(factor * factor);
      out[x] = static_cast<uint8_t>((sum + n / 2) / n);
    }
  }
}

// Separate downscale-then-blend, the pre-fusion formulation.
void ref_downscale_blend(media::ConstPlaneView src, media::PlaneView dst,
                         media::PlaneView scratch, int factor, int dst_x,
                         int dst_y, int alpha) {
  ref_downscale_box(src, scratch, factor);
  media::blend(media::ConstPlaneView{scratch.data, scratch.width,
                                     scratch.height, scratch.stride},
               dst, dst_x, dst_y, alpha, 0, dst.height);
}

void bench_kernels() {
  const int w = 1920, h = 1080;
  media::SynthSpec spec{.seed = 7, .width = w, .height = h,
                        .format = media::PixelFormat::kGray};
  media::FramePtr src = media::make_synth_frame(spec, 0);
  media::Frame dst(media::PixelFormat::kGray, w, h);

  for (int k : {3, 5}) {
    auto [base_h, opt_h] = best_ms_pair(
        reps(5), [&] { ref_blur_h(src->plane(0), dst.plane(0), k); },
        [&] { media::blur_h(src->plane(0), dst.plane(0), k, 0, h); });
    add_row("blur_h_k" + std::to_string(k), base_h, opt_h, "1080p plane");
    auto [base_v, opt_v] = best_ms_pair(
        reps(5), [&] { ref_blur_v(src->plane(0), dst.plane(0), k); },
        [&] { media::blur_v(src->plane(0), dst.plane(0), k, 0, h); });
    add_row("blur_v_k" + std::to_string(k), base_v, opt_v, "1080p plane");
  }

  for (int factor : {2, 4}) {
    media::Frame small(media::PixelFormat::kGray, w / factor, h / factor);
    auto [base, opt] = best_ms_pair(
        reps(10),
        [&] { ref_downscale_box(src->plane(0), small.plane(0), factor); },
        [&] {
          media::downscale_box(src->plane(0), small.plane(0), factor, 0,
                               h / factor);
        });
    add_row("downscale_box_f" + std::to_string(factor), base, opt,
            "1080p plane");
  }

  // Naive scalar downscale-then-blend vs the fused dispatched kernel:
  // the historical pre-optimization comparison.
  {
    const int factor = 2;
    media::Frame scratch(media::PixelFormat::kGray, w / factor, h / factor);
    auto [base, opt] = best_ms_pair(
        reps(10),
        [&] {
          ref_downscale_blend(src->plane(0), dst.plane(0), scratch.plane(0),
                              factor, 16, 16, 192);
        },
        [&] {
          media::downscale_blend(src->plane(0), dst.plane(0), factor, 16, 16,
                                 192, 0, h);
        });
    add_row("downscale_blend_f2", base, opt,
            "1080p plane, fused vs naive scalar 2-pass");
  }

  // Fused kernel vs its OWN 2-pass composition, both legs under the
  // active dispatch tier: downscale_box into a scratch plane, then blend
  // the scratch over dst. Fusion must never lose to the composition it
  // replaces — main() gates this row at >= 1.0x. (The fused win is the
  // elided scratch store/reload plus one loop pass, so the expected
  // ratio is modest, ~1.1-1.3x, on every tier.)
  {
    const int factor = 2;
    media::Frame scratch(media::PixelFormat::kGray, w / factor, h / factor);
    media::PlaneView sp = scratch.plane(0);
    // One rep is ~0.3 ms, so a high interleaved count is cheap; the
    // gate below needs a stable minimum even in --smoke runs.
    auto [base, opt] = best_ms_pair(
        40,
        [&] {
          media::downscale_box(src->plane(0), sp, factor, 0, h / factor);
          media::blend(media::ConstPlaneView{sp.data, sp.width, sp.height,
                                             sp.stride},
                       dst.plane(0), 16, 16, 192, 0, h);
        },
        [&] {
          media::downscale_blend(src->plane(0), dst.plane(0), factor, 16, 16,
                                 192, 0, h);
        });
    add_row("downscale_blend_f2_vs_simd2pass", base, opt,
            "1080p plane, fused vs dispatched 2-pass");
  }

  // Same discipline for the fused separable blur: blur_hv vs its own
  // dispatched blur_h-into-scratch + blur_v composition. The fused win
  // is the elided full-plane intermediate (the ring stays in L1);
  // main() gates this row at >= 1.0x like the downscale_blend one.
  {
    const int k = 5;
    media::Frame scratch(media::PixelFormat::kGray, w, h);
    media::PlaneView sp = scratch.plane(0);
    auto [base, opt] = best_ms_pair(
        40,
        [&] {
          media::blur_h(src->plane(0), sp, k, 0, h);
          media::blur_v(media::ConstPlaneView{sp.data, sp.width, sp.height,
                                              sp.stride},
                        dst.plane(0), k, 0, h);
        },
        [&] { media::blur_hv(src->plane(0), dst.plane(0), k, 0, h); });
    add_row("blur_hv_k5_vs_2pass", base, opt,
            "1080p plane, fused vs dispatched 2-pass");
  }
}

// --- end-to-end MJPEG throughput (wall clock, thread executor) --------------
//
// Frames/s and compressed-MB/s of the frame-parallel decode application
// (apps::run_mjpeg_decode), 1 worker vs a multi-worker pool. These are
// HOST wall-clock numbers: on a single-core runner the multi-worker leg
// gains little, so the rows are reported for trend tracking but not
// gated. 4K x 4 workers is the paper-motivated real-time target point.

void bench_throughput() {
  auto run = [](int w, int h, int frames, int workers) {
    apps::MjpegDecodeConfig c;
    c.width = w;
    c.height = h;
    c.frames = frames;
    c.clip_frames = 2;  // bounds synth+encode setup cost, decode unchanged
    c.quality = 85;
    c.slices = 2;
    c.window = workers;
    c.workers = workers;
    c.entropy_workers = 1;
    c.restart = 0;
    return apps::run_mjpeg_decode(c);
  };
  auto add_tp_row = [](const std::string& name, const char* what,
                       const apps::MjpegDecodeResult& w1,
                       const apps::MjpegDecodeResult& wn, int workers) {
    char unit[160];
    std::snprintf(unit, sizeof unit,
                  "%s; 1 worker %.1f f/s, %d workers %.1f f/s (%.1f MB/s)",
                  what, w1.frames_per_sec, workers, wn.frames_per_sec,
                  wn.mb_per_sec);
    g_report.add(name, w1.wall_seconds * 1e3, wn.wall_seconds * 1e3, unit);
  };
  const int frames_1080 = g_smoke ? 8 : 24;
  const int frames_4k = g_smoke ? 4 : 12;
  {
    auto w1 = run(1920, 1080, frames_1080, 1);
    auto w4 = run(1920, 1080, frames_1080, 4);
    char what[48];
    std::snprintf(what, sizeof what, "%d 1080p frames", frames_1080);
    add_tp_row("mjpeg_throughput_1080p", what, w1, w4, 4);
  }
  {
    auto w1 = run(3840, 2160, frames_4k, 1);
    auto w4 = run(3840, 2160, frames_4k, 4);
    char what[48];
    std::snprintf(what, sizeof what, "%d 4K frames", frames_4k);
    add_tp_row("mjpeg_throughput_4k", what, w1, w4, 4);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      g_smoke = true;
    else
      out = argv[i];
  }
  g_report.add_context(
      "dispatch",
      media::kernel_dispatch_name(media::active_kernel_dispatch()));
  g_report.add_context("mode", g_smoke ? "smoke" : "full");
  bench_decode();
  bench_kernels();
  bench_throughput();
  g_report.write_json(out);
  // The headline acceptance bar: the new decode path must be at least
  // 3x the old bit-at-a-time decoder on the 1080p stream. Without a
  // vector IDCT tier (forced scalar, or a host below SSE2) the entropy
  // rewrite alone carries the row, so the bar drops to 2x.
  const bool scalar_only =
      media::active_kernel_dispatch() == media::KernelDispatch::kScalar;
  const double bar = scalar_only ? 2.0 : 3.0;
  double headline = g_report.speedup_of("jpeg_decode_1080p");
  if (headline < bar) {
    std::printf("FAIL: jpeg_decode_1080p speedup %.2fx < %.0fx\n", headline,
                bar);
    return 1;
  }
  // Fusion bar: the fused downscale+blend kernel must never lose to its
  // own dispatched 2-pass composition.
  double fused = g_report.speedup_of("downscale_blend_f2_vs_simd2pass");
  if (fused < 1.0) {
    std::printf("FAIL: downscale_blend_f2 fused %.2fx slower than its "
                "dispatched 2-pass composition\n", fused);
    return 1;
  }
  double fused_blur = g_report.speedup_of("blur_hv_k5_vs_2pass");
  if (fused_blur < 1.0) {
    std::printf("FAIL: blur_hv fused %.2fx slower than its dispatched "
                "2-pass composition\n", fused_blur);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
