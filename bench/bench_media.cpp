// Media hot-path microbench: wall-clock (host) cost of the JPEG decode
// phases and the pixel kernels, before/after the table-driven Huffman +
// fixed-point AAN + border-split rewrites. Emits machine-readable
// BENCH_kernels.json so the perf trajectory is tracked PR over PR.
//
// This measures HOST time only. The simulated-cycle model the figure
// benches (fig8/9/10) report is a separate, deliberately unchanged layer
// — see docs/PERF.md for the split.
//
// Usage: bench_media [output.json]   (default ./BENCH_kernels.json)
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "media/frame.hpp"
#include "media/jpeg.hpp"
#include "media/kernels.hpp"
#include "media/mjpeg.hpp"
#include "media/synth.hpp"
#include "support/check.hpp"

namespace {

using bench::best_ms;

bench::BenchReport g_report("bench_media");

void add_row(const std::string& name, double baseline_ms,
             double optimized_ms, const std::string& unit) {
  g_report.add(name, baseline_ms, optimized_ms, unit);
}

// --- decode phases on a 1080p synthetic MJPEG stream ------------------------

void bench_decode() {
  const int kFrames = 4;
  media::SynthSpec spec{.seed = 42, .width = 1920, .height = 1080,
                        .format = media::PixelFormat::kYuv420};
  media::RawVideo raw = media::RawVideo::synthesize(spec, kFrames);
  auto clip = media::MjpegClip::encode(raw, 75);
  SUP_CHECK(clip.is_ok());
  const media::MjpegClip& mj = clip.value();
  std::printf("1080p synthetic MJPEG: %d frames, %zu compressed bytes\n",
              mj.frame_count(), mj.total_bytes());

  // Headline: full frame decode (entropy decode + IDCT of every plane),
  // old implementation (bit-at-a-time Huffman walk, float reference
  // IDCT, fresh buffers per frame) against the new hot path
  // (table-driven Huffman through the streaming buffer-reuse API,
  // fixed-point AAN IDCT).
  media::jpeg::CoeffImage reuse;
  std::vector<media::FramePtr> outs;
  auto idct_planes = [&](const media::jpeg::CoeffImage& img,
                         media::jpeg::IdctImpl impl) {
    if (outs.empty())
      for (int p = 0; p < media::plane_count(img.format); ++p)
        outs.push_back(media::make_frame(media::PixelFormat::kGray,
                                         img.comps[static_cast<size_t>(p)].width,
                                         img.comps[static_cast<size_t>(p)].height));
    for (int p = 0; p < media::plane_count(img.format); ++p) {
      const auto& cp = img.comps[static_cast<size_t>(p)];
      media::jpeg::idct_component(cp, outs[static_cast<size_t>(p)]->plane(0),
                                  0, cp.blocks_h, impl);
    }
  };
  auto decode_old = [&] {
    for (int i = 0; i < mj.frame_count(); ++i) {
      const auto& bytes = mj.frame(i);
      auto coeffs = media::jpeg::decode_to_coefficients(
          bytes.data(), bytes.size(), media::jpeg::HuffmanImpl::kBitSerial);
      SUP_CHECK(coeffs.is_ok());
      idct_planes(coeffs.value(), media::jpeg::IdctImpl::kFloatReference);
    }
  };
  auto decode_new = [&] {
    for (int i = 0; i < mj.frame_count(); ++i) {
      const auto& bytes = mj.frame(i);
      support::Status st = media::jpeg::decode_to_coefficients_into(
          bytes.data(), bytes.size(), &reuse,
          media::jpeg::HuffmanImpl::kLookupTable);
      SUP_CHECK(st.is_ok());
      idct_planes(reuse, media::jpeg::IdctImpl::kFixedPoint);
    }
  };
  double old_ms = best_ms(5, decode_old);
  double new_ms = best_ms(5, decode_new);
  add_row("jpeg_decode_1080p", old_ms, new_ms,
          "full decode (entropy + IDCT) of 4 1080p frames");

  // Attribution row: entropy decode alone, same streaming buffer reuse
  // on both sides, so the delta is purely the bit-reader + lookup table.
  auto entropy_only = [&](media::jpeg::HuffmanImpl impl) {
    for (int i = 0; i < mj.frame_count(); ++i) {
      const auto& bytes = mj.frame(i);
      support::Status st = media::jpeg::decode_to_coefficients_into(
          bytes.data(), bytes.size(), &reuse, impl);
      SUP_CHECK(st.is_ok());
    }
  };
  double serial_stream = best_ms(
      5, [&] { entropy_only(media::jpeg::HuffmanImpl::kBitSerial); });
  double fast_stream = best_ms(
      5, [&] { entropy_only(media::jpeg::HuffmanImpl::kLookupTable); });
  add_row("huffman_engine_only", serial_stream, fast_stream,
          "entropy decode of 4 1080p frames");

  // IDCT over the luma plane of one decoded frame.
  const auto& bytes = mj.frame(0);
  auto coeffs =
      media::jpeg::decode_to_coefficients(bytes.data(), bytes.size());
  SUP_CHECK(coeffs.is_ok());
  const media::jpeg::CoeffPlane& y = coeffs.value().comps[0];
  media::Frame out(media::PixelFormat::kGray, y.width, y.height);
  auto idct_all = [&](media::jpeg::IdctImpl impl) {
    media::jpeg::idct_component(y, out.plane(0), 0, y.blocks_h, impl);
  };
  double f_ref = best_ms(
      10, [&] { idct_all(media::jpeg::IdctImpl::kFloatReference); });
  double fixed =
      best_ms(10, [&] { idct_all(media::jpeg::IdctImpl::kFixedPoint); });
  add_row("idct_1080p_luma", f_ref, fixed, "IDCT of one 1080p luma plane");
}

// --- pixel kernels ----------------------------------------------------------

// Naive clamp-everywhere references, mirroring the pre-optimization
// kernel bodies (same structure as tests/test_kernels_equiv.cpp).
int clampi(int v, int lo, int hi) { return v < lo ? lo : (v > hi ? hi : v); }

void ref_blur_h(media::ConstPlaneView src, media::PlaneView dst, int k) {
  const int16_t* taps = media::gaussian_taps(k);
  const int r = k / 2;
  for (int y = 0; y < dst.height; ++y) {
    const uint8_t* in = src.row(y);
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      int acc = 128;
      for (int t = -r; t <= r; ++t)
        acc += taps[t + r] * in[clampi(x + t, 0, src.width - 1)];
      out[x] = static_cast<uint8_t>(acc >> 8);
    }
  }
}

void ref_blur_v(media::ConstPlaneView src, media::PlaneView dst, int k) {
  const int16_t* taps = media::gaussian_taps(k);
  const int r = k / 2;
  for (int y = 0; y < dst.height; ++y) {
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      int acc = 128;
      for (int t = -r; t <= r; ++t)
        acc += taps[t + r] *
               src.row(clampi(y + t, 0, src.height - 1))[x];
      out[x] = static_cast<uint8_t>(acc >> 8);
    }
  }
}

void ref_downscale_box(media::ConstPlaneView src, media::PlaneView dst,
                       int factor) {
  for (int y = 0; y < dst.height; ++y) {
    uint8_t* out = dst.row(y);
    for (int x = 0; x < dst.width; ++x) {
      unsigned sum = 0;
      for (int dy = 0; dy < factor; ++dy) {
        const uint8_t* row = src.row(y * factor + dy) + x * factor;
        for (int dx = 0; dx < factor; ++dx) sum += row[dx];
      }
      unsigned n = static_cast<unsigned>(factor * factor);
      out[x] = static_cast<uint8_t>((sum + n / 2) / n);
    }
  }
}

// Separate downscale-then-blend, the pre-fusion formulation.
void ref_downscale_blend(media::ConstPlaneView src, media::PlaneView dst,
                         media::PlaneView scratch, int factor, int dst_x,
                         int dst_y, int alpha) {
  ref_downscale_box(src, scratch, factor);
  media::blend(media::ConstPlaneView{scratch.data, scratch.width,
                                     scratch.height, scratch.stride},
               dst, dst_x, dst_y, alpha, 0, dst.height);
}

void bench_kernels() {
  const int w = 1920, h = 1080;
  media::SynthSpec spec{.seed = 7, .width = w, .height = h,
                        .format = media::PixelFormat::kGray};
  media::FramePtr src = media::make_synth_frame(spec, 0);
  media::Frame dst(media::PixelFormat::kGray, w, h);

  for (int k : {3, 5}) {
    double base = best_ms(5, [&] { ref_blur_h(src->plane(0), dst.plane(0), k); });
    double opt = best_ms(
        5, [&] { media::blur_h(src->plane(0), dst.plane(0), k, 0, h); });
    add_row("blur_h_k" + std::to_string(k), base, opt, "1080p plane");
    base = best_ms(5, [&] { ref_blur_v(src->plane(0), dst.plane(0), k); });
    opt = best_ms(
        5, [&] { media::blur_v(src->plane(0), dst.plane(0), k, 0, h); });
    add_row("blur_v_k" + std::to_string(k), base, opt, "1080p plane");
  }

  for (int factor : {2, 4}) {
    media::Frame small(media::PixelFormat::kGray, w / factor, h / factor);
    double base = best_ms(
        10, [&] { ref_downscale_box(src->plane(0), small.plane(0), factor); });
    double opt = best_ms(10, [&] {
      media::downscale_box(src->plane(0), small.plane(0), factor, 0,
                           h / factor);
    });
    add_row("downscale_box_f" + std::to_string(factor), base, opt,
            "1080p plane");
  }

  // Fused downscale+blend vs downscale-into-scratch-then-blend.
  {
    const int factor = 2;
    media::Frame scratch(media::PixelFormat::kGray, w / factor, h / factor);
    double base = best_ms(10, [&] {
      ref_downscale_blend(src->plane(0), dst.plane(0), scratch.plane(0),
                          factor, 16, 16, 192);
    });
    double opt = best_ms(10, [&] {
      media::downscale_blend(src->plane(0), dst.plane(0), factor, 16, 16,
                             192, 0, h);
    });
    add_row("downscale_blend_f2", base, opt, "1080p plane, fused vs 2-pass");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = argc > 1 ? argv[1] : "BENCH_kernels.json";
  bench_decode();
  bench_kernels();
  g_report.write_json(out);
  // The headline acceptance bar: the new decode path must be at least
  // 3x the old bit-at-a-time decoder on the 1080p stream.
  double headline = g_report.speedup_of("jpeg_decode_1080p");
  if (headline < 3.0) {
    std::printf("FAIL: jpeg_decode_1080p speedup %.2fx < 3x\n", headline);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
