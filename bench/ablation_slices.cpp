// Ablation — data-parallel slice count.
//
// The paper picks 8 slices for PiP (720x576) and 9 for Blur (360x288).
// This sweep shows why: too few slices starve the cores, too many buy
// nothing further and add per-job scheduling overhead.
//
// The (slices x app) grid runs on the parallel sweep driver.
#include "bench_util.hpp"

int main() {
  std::printf("Ablation: slice count at 8 cores\n");
  std::printf("%-8s %16s %16s\n", "slices", "PiP-1 Mcycles",
              "Blur-3 Mcycles");

  const std::vector<int> slice_counts = {1, 2, 4, 8, 16, 32, 64};
  // Even points: PiP; odd points: Blur. Slice count = slice_counts[idx/2].
  std::vector<uint64_t> cycles = bench::parallel_sweep(
      static_cast<int>(slice_counts.size()) * 2, [&](int idx) -> uint64_t {
        int slices = slice_counts[static_cast<size_t>(idx / 2)];
        if (idx % 2 == 0) {
          apps::PipConfig pc = bench::paper_pip(1);
          pc.slices = slices;
          pc.frames = 48;
          auto prog = bench::build_program(apps::pip_xspcl(pc));
          return bench::run_sim(*prog, pc.frames, 8).total_cycles;
        }
        apps::BlurConfig bc = bench::paper_blur(3);
        bc.slices = slices;
        bc.frames = 48;
        auto prog = bench::build_program(apps::blur_xspcl(bc));
        return bench::run_sim(*prog, bc.frames, 8).total_cycles;
      });

  for (size_t i = 0; i < slice_counts.size(); ++i)
    std::printf("%-8d %16.1f %16.1f\n", slice_counts[i],
                bench::mcycles(cycles[2 * i]),
                bench::mcycles(cycles[2 * i + 1]));
  std::printf(
      "\nExpected: a sweet spot around the paper's choices; beyond it the\n"
      "extra jobs only add central-queue and dispatch overhead.\n");
  bench::teardown();
  return 0;
}
