// Ablation — data-parallel slice count.
//
// The paper picks 8 slices for PiP (720x576) and 9 for Blur (360x288).
// This sweep shows why: too few slices starve the cores, too many buy
// nothing further and add per-job scheduling overhead.
#include "bench_util.hpp"

int main() {
  std::printf("Ablation: slice count at 8 cores\n");
  std::printf("%-8s %16s %16s\n", "slices", "PiP-1 Mcycles",
              "Blur-3 Mcycles");

  for (int slices : {1, 2, 4, 8, 16, 32, 64}) {
    apps::PipConfig pc = bench::paper_pip(1);
    pc.slices = slices;
    pc.frames = 48;
    apps::BlurConfig bc = bench::paper_blur(3);
    bc.slices = slices;
    bc.frames = 48;
    auto pp = bench::build_program(apps::pip_xspcl(pc));
    auto bp = bench::build_program(apps::blur_xspcl(bc));
    uint64_t pt = bench::run_sim(*pp, pc.frames, 8).total_cycles;
    uint64_t bt = bench::run_sim(*bp, bc.frames, 8).total_cycles;
    std::printf("%-8d %16.1f %16.1f\n", slices, bench::mcycles(pt),
                bench::mcycles(bt));
  }
  std::printf(
      "\nExpected: a sweet spot around the paper's choices; beyond it the\n"
      "extra jobs only add central-queue and dispatch overhead.\n");
  bench::teardown();
  return 0;
}
