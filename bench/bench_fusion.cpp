// Loop-level fusion ablation (§4.1, taken past the paper's proposal).
//
// The paper attributes JPiP's componentization overhead to cache misses
// on the linking streams and proposes grouping (scheduling the chain as
// one entity). ablation_grouping reproduces that; this bench measures
// the next step the fuse-kernels pass adds: rewriting registered chains
// into single fused-loop components, so the linking packets never
// materialize at all. Three legs, each at pipeline windows 5 and 2
// (stream depth = window), all at 1 core against the hand-written
// sequential baseline:
//
//   plain  — default pipeline, no fusion pass
//   group  — auto-group only (component fusion: shared core, packets
//            still materialize)
//   fuse   — auto-group + fuse-kernels (loop fusion: the decode chain
//            becomes jpeg_decode_planes, each downscale->blend becomes
//            a downscale_blend; coefficient images and small frames
//            are strip/scratch traffic)
//
// At window 5 the five-slot stream rotation keeps ~17 MB of canvas and
// plane slots live against the 16 MB simulated L2, so even the fused
// program pays a few percent. At window 2 the fused working set fits
// and the gate applies: within 2% of hand-written cycles and the same
// order of magnitude of L2 misses (the plain program is ~40x). Every
// leg must also produce the hand-written checksum — fusion that changes
// pixels is a bug, not a win.
//
// Emits BENCH_fusion.json (simulated cycles, not wall-clock).
// `bench_fusion --smoke` (CI) runs fewer frames with the same gates.
#include <cstring>

#include "bench_util.hpp"
#include "components/sinks.hpp"
#include "media/kernels.hpp"
#include "perf/fusion.hpp"
#include "support/strings.hpp"

namespace {

struct Leg {
  std::string name;
  int window;
  bool group;
  bool fuse;
};

struct Meas {
  uint64_t cycles = 0;
  uint64_t fetches = 0;
  uint64_t checksum = 0;
  int fused_tasks = 0;  // tasks synthesized by either fusion pass
};

uint64_t sink_checksum(hinch::Program& prog) {
  for (int i = 0; i < prog.component_count(); ++i) {
    auto* s =
        dynamic_cast<const components::SinkAccess*>(&prog.component(i));
    if (s) return s->sink().checksum();
  }
  return 0;
}

double pct_over(uint64_t cycles, uint64_t base) {
  return 100.0 * (static_cast<double>(cycles) / static_cast<double>(base) -
                  1.0);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  apps::JpipConfig cfg = bench::paper_jpip(1);
  if (smoke) cfg.frames = 8;
  std::printf("Loop-level fusion ablation (JPiP-1, %d frames, 1 core)\n",
              cfg.frames);

  components::register_standard_globally();
  const std::string spec = apps::jpip_xspcl(cfg);
  auto graph = xspcl::load_string(spec);
  if (!graph.is_ok()) {
    std::fprintf(stderr, "bench_fusion: %s\n",
                 graph.status().to_string().c_str());
    return 1;
  }
  auto bytes = perf::measure_stream_slot_bytes(
      *graph.value(), hinch::ComponentRegistry::global());
  if (!bytes.is_ok()) {
    std::fprintf(stderr, "bench_fusion: %s\n",
                 bytes.status().to_string().c_str());
    return 1;
  }

  const std::vector<Leg> legs = {
      {"plain", 5, false, false}, {"group", 5, true, false},
      {"fuse", 5, true, true},    {"plain", 2, false, false},
      {"group", 2, true, false},  {"fuse", 2, true, true},
  };

  // Point 0 is the hand-written sequential baseline; then one point per
  // (leg, window). Sync costs off at 1 core, the Fig. 8 convention.
  std::vector<Meas> meas = bench::parallel_sweep(
      1 + static_cast<int>(legs.size()), [&](int idx) -> Meas {
        if (idx == 0) {
          apps::SeqResult seq = apps::run_jpip_sequential(cfg);
          return Meas{seq.cycles, seq.mem.mem_fetches, seq.checksum, 0};
        }
        const Leg& leg = legs[static_cast<size_t>(idx - 1)];
        perf::FusionModel model;
        model.cores = 1;
        model.window = leg.window;
        hinch::BuildConfig config;
        // The parked footprint is window slots per stream; build the
        // stream rings to match so the cache sees what the schedule
        // actually keeps live.
        config.stream_depth = leg.window;
        if (leg.group) {
          config.passes.auto_group = true;
          config.passes.advisor =
              perf::make_fusion_advisor(bytes.value(), model);
        }
        if (leg.fuse) {
          config.passes.fuse_kernels = true;
          config.passes.kernel_patterns = &components::standard_fusions();
          config.passes.kernel_advisor =
              perf::make_kernel_fusion_advisor(bytes.value(), model);
        }
        auto prog = hinch::Program::build(
            *graph.value(), hinch::ComponentRegistry::global(), config);
        if (!prog.is_ok()) {
          std::fprintf(stderr, "bench_fusion: %s\n",
                       prog.status().to_string().c_str());
          std::abort();
        }
        Meas m;
        for (const hinch::Task& t : prog.value()->tasks())
          if (t.components.size() > 1 ||
              (t.components.size() == 1 &&
               t.label.find('+') != std::string::npos))
            ++m.fused_tasks;
        hinch::SimResult r =
            bench::run_sim(*prog.value(), cfg.frames, 1,
                           /*sync_costs=*/false, leg.window);
        m.cycles = r.total_cycles;
        m.fetches = r.mem.mem_fetches;
        m.checksum = sink_checksum(*prog.value());
        return m;
      });

  const Meas& seq = meas[0];
  std::printf("hand-written sequential: %.1f Mcyc, %llu L2 misses\n\n",
              bench::mcycles(seq.cycles),
              static_cast<unsigned long long>(seq.fetches));
  std::printf("%-8s %6s %12s %10s %12s %8s %6s\n", "leg", "window",
              "Mcycles", "overhead", "L2 misses", "vs seq", "fused");
  bool checksums_ok = true;
  for (size_t i = 0; i < legs.size(); ++i) {
    const Leg& leg = legs[i];
    const Meas& m = meas[i + 1];
    if (m.checksum != seq.checksum) checksums_ok = false;
    std::printf("%-8s %6d %12.1f %+9.2f%% %12llu %7.1fx %6d\n",
                leg.name.c_str(), leg.window, bench::mcycles(m.cycles),
                pct_over(m.cycles, seq.cycles),
                static_cast<unsigned long long>(m.fetches),
                static_cast<double>(m.fetches) /
                    static_cast<double>(seq.fetches),
                m.fused_tasks);
  }
  std::printf("checksums vs hand-written: %s\n",
              checksums_ok ? "all identical" : "MISMATCH");

  // --- machine-readable artifact --------------------------------------------
  {
    FILE* f = std::fopen("BENCH_fusion.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_fusion: cannot open BENCH_fusion.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fusion\",\n");
    std::fprintf(f, "  \"clock\": \"simulated_cycles\",\n");
    std::fprintf(
        f, "  \"context\": {\"app\": \"jpip1\", \"frames\": %d, "
           "\"cores\": 1, \"dispatch\": \"%s\"},\n",
        cfg.frames,
        media::kernel_dispatch_name(media::active_kernel_dispatch()));
    std::fprintf(f,
                 "  \"sequential\": {\"cycles\": %llu, \"l2_misses\": %llu},\n",
                 static_cast<unsigned long long>(seq.cycles),
                 static_cast<unsigned long long>(seq.fetches));
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < legs.size(); ++i) {
      const Leg& leg = legs[i];
      const Meas& m = meas[i + 1];
      std::fprintf(
          f,
          "    {\"leg\": \"%s\", \"window\": %d, \"cycles\": %llu, "
          "\"overhead_pct\": %s, \"l2_misses\": %llu, "
          "\"miss_ratio\": %s, \"fused_tasks\": %d, "
          "\"checksum_ok\": %s}%s\n",
          leg.name.c_str(), leg.window,
          static_cast<unsigned long long>(m.cycles),
          support::format_double(pct_over(m.cycles, seq.cycles)).c_str(),
          static_cast<unsigned long long>(m.fetches),
          support::format_double(static_cast<double>(m.fetches) /
                                 static_cast<double>(seq.fetches))
              .c_str(),
          m.fused_tasks, m.checksum == seq.checksum ? "true" : "false",
          i + 1 < legs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_fusion.json\n");
  }

  // --- gates -----------------------------------------------------------------
  //
  // The fused window-2 leg is the success bar: within 2% of the
  // hand-written decoder with L2 misses in the same order of magnitude
  // (the plain leg is ~40x). The window-5 rows are reported, not gated:
  // five-slot rotation is a pipelining choice the fusion pass does not
  // control.
  const Meas& gated = meas[6];  // fuse @ window 2
  bool ok = true;
  if (!checksums_ok) {
    std::fprintf(stderr, "bench_fusion: FAIL checksum mismatch\n");
    ok = false;
  }
  double overhead = pct_over(gated.cycles, seq.cycles);
  if (overhead > 2.0) {
    std::fprintf(stderr,
                 "bench_fusion: FAIL fuse@2 overhead %.2f%% > 2%%\n",
                 overhead);
    ok = false;
  }
  double miss_ratio = static_cast<double>(gated.fetches) /
                      static_cast<double>(seq.fetches);
  if (miss_ratio > 10.0) {
    std::fprintf(stderr,
                 "bench_fusion: FAIL fuse@2 miss ratio %.1fx > 10x\n",
                 miss_ratio);
    ok = false;
  }
  bench::teardown();
  return ok ? 0 : 1;
}
