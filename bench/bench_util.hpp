// Shared helpers for the figure-reproduction harnesses.
//
// Every bench builds the paper's applications at (or near) paper scale,
// runs them on the SpaceCAKE-substitute simulator, and prints the same
// rows/series the corresponding figure reports. Absolute cycle counts
// differ from the TriMedia testbed; the shapes are the reproduction
// target (see DESIGN.md).
#pragma once

#include <cstdio>
#include <string>

#include "apps/apps.hpp"
#include "components/clip_cache.hpp"
#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "xspcl/loader.hpp"

namespace bench {

// Paper-scale configurations (§4). The inputs are synthetic clips that
// loop; clip_frames bounds one-time generation cost without changing the
// per-frame work.
inline apps::PipConfig paper_pip(int pips, bool reconfigurable = false) {
  apps::PipConfig c;
  c.width = 720;
  c.height = 576;
  c.frames = 96;
  c.pips = pips;
  c.factor = 4;
  c.slices = 8;
  c.clip_frames = 8;
  c.reconfigurable = reconfigurable;
  c.toggle_period = 12;
  return c;
}

inline apps::JpipConfig paper_jpip(int pips, bool reconfigurable = false) {
  apps::JpipConfig c;
  c.width = 1280;
  c.height = 720;
  c.frames = 24;
  c.pips = pips;
  c.factor = 16;
  c.slices = 45;
  c.clip_frames = 4;
  c.reconfigurable = reconfigurable;
  c.toggle_period = 12;
  return c;
}

inline apps::BlurConfig paper_blur(int kernel, bool reconfigurable = false) {
  apps::BlurConfig c;
  c.width = 360;
  c.height = 288;
  c.frames = 96;
  c.kernel = kernel;
  c.slices = 9;
  c.clip_frames = 8;
  c.reconfigurable = reconfigurable;
  c.toggle_period = 12;
  return c;
}

inline std::unique_ptr<hinch::Program> build_program(
    const std::string& spec) {
  components::register_standard_globally();
  auto prog =
      xspcl::build_program(spec, hinch::ComponentRegistry::global());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "bench: failed to build program: %s\n",
                 prog.status().to_string().c_str());
    std::abort();
  }
  return std::move(prog).take();
}

inline hinch::SimResult run_sim(hinch::Program& prog, int64_t iterations,
                                int cores, bool sync_costs = true,
                                int window = 5) {
  hinch::RunConfig run;
  run.iterations = iterations;
  run.window = window;
  hinch::SimParams sim;
  sim.cores = cores;
  sim.sync_costs = sync_costs;
  return hinch::run_on_sim(prog, run, sim);
}

inline double mcycles(uint64_t cycles) {
  return static_cast<double>(cycles) / 1e6;
}

// End-of-main teardown: drop the process-wide clip caches so harnesses
// that chain several paper-scale configurations (and leak checkers) see
// a clean exit.
inline void teardown() { components::clear_clip_caches(); }

}  // namespace bench
