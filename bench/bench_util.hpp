// Shared helpers for the figure-reproduction harnesses.
//
// Every bench builds the paper's applications at (or near) paper scale,
// runs them on the SpaceCAKE-substitute simulator, and prints the same
// rows/series the corresponding figure reports. Absolute cycle counts
// differ from the TriMedia testbed; the shapes are the reproduction
// target (see DESIGN.md).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/apps.hpp"
#include "components/clip_cache.hpp"
#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "obs/chrome_export.hpp"
#include "obs/trace.hpp"
#include "support/strings.hpp"
#include "xspcl/loader.hpp"

namespace bench {

// Paper-scale configurations (§4). The inputs are synthetic clips that
// loop; clip_frames bounds one-time generation cost without changing the
// per-frame work.
inline apps::PipConfig paper_pip(int pips, bool reconfigurable = false) {
  apps::PipConfig c;
  c.width = 720;
  c.height = 576;
  c.frames = 96;
  c.pips = pips;
  c.factor = 4;
  c.slices = 8;
  c.clip_frames = 8;
  c.reconfigurable = reconfigurable;
  c.toggle_period = 12;
  return c;
}

inline apps::JpipConfig paper_jpip(int pips, bool reconfigurable = false) {
  apps::JpipConfig c;
  c.width = 1280;
  c.height = 720;
  c.frames = 24;
  c.pips = pips;
  c.factor = 16;
  c.slices = 45;
  c.clip_frames = 4;
  c.reconfigurable = reconfigurable;
  c.toggle_period = 12;
  return c;
}

inline apps::BlurConfig paper_blur(int kernel, bool reconfigurable = false) {
  apps::BlurConfig c;
  c.width = 360;
  c.height = 288;
  c.frames = 96;
  c.kernel = kernel;
  c.slices = 9;
  c.clip_frames = 8;
  c.reconfigurable = reconfigurable;
  c.toggle_period = 12;
  return c;
}

inline std::unique_ptr<hinch::Program> build_program(
    const std::string& spec) {
  components::register_standard_globally();
  auto prog =
      xspcl::build_program(spec, hinch::ComponentRegistry::global());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "bench: failed to build program: %s\n",
                 prog.status().to_string().c_str());
    std::abort();
  }
  return std::move(prog).take();
}

inline hinch::SimResult run_sim(hinch::Program& prog, int64_t iterations,
                                int cores, bool sync_costs = true,
                                int window = 5) {
  hinch::RunConfig run;
  run.iterations = iterations;
  run.window = window;
  hinch::SimParams sim;
  sim.cores = cores;
  sim.sync_costs = sync_costs;
  return hinch::run_on_sim(prog, run, sim);
}

inline double mcycles(uint64_t cycles) {
  return static_cast<double>(cycles) / 1e6;
}

// --- parallel sweep driver --------------------------------------------------
//
// The figure benches sweep independent deterministic sims (core counts,
// parameter grids). parallel_sweep runs `fn(0) .. fn(n-1)` on a pool of
// worker threads and returns the results in index order. Each sweep
// point must be self-contained: build its own Program and let the sim
// executor own its per-run MemorySystem/Engine — a Program's components
// are stateful during execution, so points must never share one. Every
// point is bit-deterministic on its own, and collection is by index, so
// the assembled output is byte-identical to the sequential loop no
// matter how the points interleave.

// Worker count: XSPCL_SWEEP_THREADS if set (>=1), else the hardware
// concurrency. 1 runs the points inline on the calling thread.
inline int sweep_threads() {
  if (const char* env = std::getenv("XSPCL_SWEEP_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc ? static_cast<int>(hc) : 1;
}

// A sweep point that throws (or leaves its slot empty any other way)
// aborts the whole bench run after the pool drains, with the first error
// reported. Silently assembling partial results would publish a
// plausible-looking but incomplete BENCH_*.json / figure table.
template <typename Fn>
auto parallel_sweep(int n, Fn&& fn) -> std::vector<decltype(fn(int{}))> {
  using R = decltype(fn(int{}));
  std::vector<std::optional<R>> slots(static_cast<size_t>(n));
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::string first_error;
  auto point = [&](int i) {
    try {
      slots[static_cast<size_t>(i)].emplace(fn(i));
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!failed.exchange(true))
        first_error =
            "point " + std::to_string(i) + " threw: " + e.what();
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!failed.exchange(true))
        first_error = "point " + std::to_string(i) +
                      " threw a non-std::exception";
    }
  };
  const int workers = std::min(n, sweep_threads());
  if (workers <= 1) {
    for (int i = 0; i < n && !failed.load(); ++i) point(i);
  } else {
    std::atomic<int> next{0};
    auto work = [&] {
      for (int i = next.fetch_add(1); i < n && !failed.load();
           i = next.fetch_add(1))
        point(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers - 1));
    for (int w = 0; w < workers - 1; ++w) pool.emplace_back(work);
    work();  // the calling thread is a worker too
    for (std::thread& t : pool) t.join();
  }
  if (failed.load()) {
    std::fprintf(stderr, "bench: parallel_sweep failed: %s\n",
                 first_error.c_str());
    std::abort();
  }
  std::vector<R> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::optional<R>& s = slots[static_cast<size_t>(i)];
    if (!s.has_value()) {
      std::fprintf(stderr,
                   "bench: parallel_sweep point %d produced no result\n", i);
      std::abort();
    }
    out.push_back(std::move(*s));
  }
  return out;
}

// --- wall-clock timing + BENCH_*.json emission ------------------------------
//
// Host-time microbench plumbing shared by bench_media and bench_sim
// (see docs/PERF.md for the host-clock vs simulated-cycle split).

using WallClock = std::chrono::steady_clock;

inline double ms_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0)
      .count();
}

// Best-of-N wall-clock of `fn` (after one untimed warmup run).
template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto t0 = WallClock::now();
    fn();
    double ms = ms_since(t0);
    if (ms < best) best = ms;
  }
  return best;
}

// Best-of-N for a baseline/optimized pair, with the reps interleaved
// (a, b, a, b, ...) so both legs sample the same machine conditions —
// host-wide slowdowns then inflate both minima instead of skewing the
// ratio. Returns {best_a_ms, best_b_ms}.
template <typename FnA, typename FnB>
std::pair<double, double> best_ms_pair(int reps, FnA&& a, FnB&& b) {
  a();
  b();
  double best_a = 1e300, best_b = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto t0 = WallClock::now();
    a();
    best_a = std::min(best_a, ms_since(t0));
    t0 = WallClock::now();
    b();
    best_b = std::min(best_b, ms_since(t0));
  }
  return {best_a, best_b};
}

struct BenchRow {
  std::string name;
  double baseline_ms;
  double optimized_ms;
  std::string unit;  // what one measurement covers

  double speedup() const { return baseline_ms / optimized_ms; }
};

// Collects baseline/optimized row pairs, echoes them to stdout, and
// writes the machine-readable BENCH_<name>.json the CI bench-smoke step
// uploads as an artifact.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void add(const std::string& name, double baseline_ms, double optimized_ms,
           const std::string& unit) {
    rows_.push_back({name, baseline_ms, optimized_ms, unit});
    std::printf(
        "%-28s baseline %9.3f ms  optimized %9.3f ms  speedup %5.2fx\n",
        name.c_str(), baseline_ms, optimized_ms, baseline_ms / optimized_ms);
  }

  // Free-form string facts about the run (kernel dispatch tier, host,
  // flags); emitted as a "context" object so BENCH_*.json artifacts from
  // different machines/legs are distinguishable.
  void add_context(const std::string& key, const std::string& value) {
    context_.emplace_back(key, value);
  }

  const std::vector<BenchRow>& rows() const { return rows_; }

  // Returns the speedup of the named row, or 0 if absent.
  double speedup_of(const std::string& name) const {
    for (const BenchRow& r : rows_)
      if (r.name == name) return r.speedup();
    return 0.0;
  }

  void write_json(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open output json '%s'\n",
                   path.c_str());
      std::abort();
    }
    // Numbers are formatted via support::format_double, not fprintf("%f"):
    // printf honours LC_NUMERIC, and a decimal-comma locale would emit
    // invalid JSON (see docs/OBSERVABILITY.md, number formatting).
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_.c_str());
    std::fprintf(f, "  \"clock\": \"host_wall_clock\",\n");
    if (!context_.empty()) {
      std::fprintf(f, "  \"context\": {");
      for (size_t i = 0; i < context_.size(); ++i)
        std::fprintf(f, "%s\"%s\": \"%s\"", i ? ", " : "",
                     context_[i].first.c_str(), context_[i].second.c_str());
      std::fprintf(f, "},\n");
    }
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const BenchRow& r = rows_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"baseline_ms\": %s, "
                   "\"optimized_ms\": %s, \"speedup\": %s, "
                   "\"unit\": \"%s\"}%s\n",
                   r.name.c_str(),
                   support::format_double(r.baseline_ms).c_str(),
                   support::format_double(r.optimized_ms).c_str(),
                   support::format_double(r.speedup()).c_str(),
                   r.unit.c_str(), i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<BenchRow> rows_;
};

// --- optional event tracing (the figure benches' --trace flag) --------------
//
// `--trace` (default path) or `--trace=out.json`. Returns the output
// path, empty when the flag is absent. The traced run happens *after*
// the regular series and prints extra lines only under the flag, so the
// untraced figure output stays byte-identical.
inline std::string parse_trace_flag(int argc, char** argv,
                                    const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--trace") return default_path;
    if (a.rfind("--trace=", 0) == 0) return a.substr(8);
  }
  return std::string();
}

// Run one traced sim point of `spec` and write the Chrome trace-event
// file to `path` (aborts on write failure — same loud-failure policy as
// the sweeps).
inline void write_sim_trace(const std::string& spec, int64_t iterations,
                            int cores, const std::string& path,
                            int window = 5) {
  if (!obs::kTraceCompiledIn)
    std::fprintf(stderr,
                 "bench: built with HINCH_TRACING=OFF; the trace will "
                 "contain no events\n");
  auto prog = build_program(spec);
  obs::TraceSession session;
  hinch::RunConfig run;
  run.iterations = iterations;
  run.window = window;
  hinch::SimParams sim;
  sim.cores = cores;
  sim.trace = &session;
  hinch::SimResult r = hinch::run_on_sim(*prog, run, sim);
  if (!obs::write_chrome_trace(session, path)) std::abort();
  std::printf("trace: wrote %s (cores=%d cycles=%.1fM events=%llu "
              "dropped=%llu)\n",
              path.c_str(), cores, mcycles(r.total_cycles),
              static_cast<unsigned long long>(session.emitted()),
              static_cast<unsigned long long>(session.dropped()));
}

// End-of-main teardown: drop the process-wide clip caches so harnesses
// that chain several paper-scale configurations (and leak checkers) see
// a clean exit.
inline void teardown() { components::clear_clip_caches(); }

}  // namespace bench
