// Adaptation bench (fig10-style): closes the feedback loop end to end
// and measures how the policy component reacts to a load step.
//
// The program is the adapt spec (specs/adapt_small.xml at bench scale):
// a var_load stage steps its per-iteration compute cost up and later
// back down; a policy component polls the executor's live
// "cycles_per_iter" gauge and drives a manager that disables an
// optional high-quality stage on overload and re-enables it on calm.
//
// Two runs, identical load profile:
//   hysteresis     high/low thresholds far apart — the load shed by
//                  disabling the option lands inside the band, so the
//                  option switches exactly once per load edge.
//   degenerate     high == low — disabling the option drops the metric
//                  straight back below the threshold, so the policy
//                  oscillates (bounded only by its hold parameter).
//
// Reported (simulated cycles, deterministic):
//   reaction   load-step onset (start of the var_load span at step_at)
//              to the first reconfiguration splice marker after it —
//              the reconfiguration latency of the whole loop: metric
//              publication -> policy poll -> manager event -> quiesce
//              -> splice (the PR's §3.4 path, traced via the
//              Category::kReconfig instants).
//   oscillation reconfiguration count inside the step window for each
//              leg; the hysteresis leg must switch exactly twice
//              (disable at the step, enable at the restore), the
//              degenerate leg strictly more often.
//
// Usage: bench_adapt [--smoke] [output.json]  (default ./BENCH_adapt.json)
//   --smoke            shrink the run for CI (same checks)
//   --trace[=f.json]   Chrome trace of the hysteresis leg
//                      (default bench_adapt_trace.json; always written)
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace {

bool g_smoke = false;

struct AdaptScale {
  int64_t iterations = 400;
  int64_t step_at = 100;
  int64_t restore_at = 300;
  int64_t warmup = 16;
  int64_t hold = 4;
};

// Load design (simulated cycles/iteration, cores=1): base 2000 +
// optional hq stage 3000 + policy/manager overhead ~2500; the step adds
// 10000. With hq on the stepped load sits ~15.5k, with hq shed ~12.5k.
// The hysteresis leg's band (13500 / 9000) brackets the shed load, the
// degenerate leg's single threshold (13500) sits above it.
std::string adapt_spec(const AdaptScale& s, bool hysteresis) {
  int64_t high = 13500;
  int64_t low = hysteresis ? 9000 : high;
  std::string spec;
  spec += "<xspcl><procedure name=\"main\"><body>";
  spec += "<component name=\"load\" class=\"var_load\">";
  spec += "<param name=\"cycles\" value=\"2000\"/>";
  spec += "<param name=\"step_at\" value=\"" + std::to_string(s.step_at) +
          "\"/>";
  spec += "<param name=\"step_cycles\" value=\"12000\"/>";
  spec += "<param name=\"restore_at\" value=\"" +
          std::to_string(s.restore_at) + "\"/>";
  spec += "</component>";
  spec += "<component name=\"watchdog\" class=\"policy\">";
  spec += "<param name=\"queue\" value=\"ctl\"/>";
  spec += "<param name=\"rules\" value=\"live.cycles_per_iter:" +
          std::to_string(high) + ":" + std::to_string(low) +
          ":overload:calm\"/>";
  spec += "<param name=\"hold\" value=\"" + std::to_string(s.hold) + "\"/>";
  spec += "<param name=\"warmup\" value=\"" + std::to_string(s.warmup) +
          "\"/>";
  spec += "</component>";
  spec += "<manager name=\"mgr\" queue=\"ctl\">";
  spec += "<on event=\"overload\" action=\"disable\" option=\"hq\"/>";
  spec += "<on event=\"calm\" action=\"enable\" option=\"hq\"/>";
  spec += "<body><option name=\"hq\" enabled=\"true\">";
  spec += "<component name=\"hq_stage\" class=\"var_load\">";
  spec += "<param name=\"cycles\" value=\"3000\"/>";
  spec += "</component></option></body></manager>";
  spec += "</body></procedure></xspcl>";
  return spec;
}

struct AdaptRun {
  hinch::SimResult result;
  uint64_t step_ts = 0;             // start of the load span at step_at
  uint64_t restore_ts = 0;          // start of the load span at restore_at
  std::vector<uint64_t> reconfig_ts;  // all splice markers, sorted
  std::vector<int64_t> reconfig_iter;
};

// Run one leg with a live metrics registry and a trace session attached,
// then scan the trace in-process for the load-step span boundaries and
// the reconfiguration splice markers (Category::kReconfig instants).
AdaptRun run_leg(const AdaptScale& s, bool hysteresis,
                 obs::TraceSession* session) {
  auto prog = bench::build_program(adapt_spec(s, hysteresis));
  obs::MetricsRegistry live;
  hinch::RunConfig run;
  run.iterations = s.iterations;
  hinch::SimParams sim;
  sim.cores = 1;
  sim.trace = session;
  sim.metrics = &live;
  AdaptRun out;
  out.result = hinch::run_on_sim(*prog, run, sim);

  std::vector<std::string> names = session->names();
  uint16_t load_name = 0;
  bool have_load = false;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "load") {
      load_name = static_cast<uint16_t>(i);
      have_load = true;
    }
  }
  SUP_CHECK_MSG(have_load, "trace has no span name for the load task");
  for (int lane = 0; lane < session->lanes(); ++lane) {
    for (const obs::TraceEvent& ev : session->recorder(lane)->collect()) {
      if (ev.kind == obs::EventKind::kSpan && ev.name == load_name) {
        if (ev.value == s.step_at) out.step_ts = ev.ts;
        if (ev.value == s.restore_at) out.restore_ts = ev.ts;
      } else if (ev.kind == obs::EventKind::kInstant &&
                 ev.cat == obs::Category::kReconfig) {
        out.reconfig_ts.push_back(ev.ts);
        out.reconfig_iter.push_back(ev.value);
      }
    }
  }
  SUP_CHECK_MSG(out.step_ts > 0 && out.restore_ts > out.step_ts,
                "load-step spans missing from the trace (ring overflow?)");
  return out;
}

size_t count_in_window(const AdaptRun& r) {
  size_t n = 0;
  for (uint64_t ts : r.reconfig_ts)
    if (ts >= r.step_ts && ts < r.restore_ts) ++n;
  return n;
}

void write_json(const std::string& path, const AdaptScale& s,
                const AdaptRun& hyst, const AdaptRun& osc,
                uint64_t reaction_cycles, int64_t reaction_iters) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open output json '%s'\n",
                 path.c_str());
    std::abort();
  }
  auto u64 = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::fprintf(f, "{\n  \"bench\": \"bench_adapt\",\n");
  std::fprintf(f, "  \"clock\": \"simulated_cycles\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", g_smoke ? "true" : "false");
  std::fprintf(f,
               "  \"load_step\": {\"step_at\": %lld, \"restore_at\": %lld, "
               "\"iterations\": %lld},\n",
               static_cast<long long>(s.step_at),
               static_cast<long long>(s.restore_at),
               static_cast<long long>(s.iterations));
  std::fprintf(f,
               "  \"reaction\": {\"step_ts\": %llu, "
               "\"first_reconfig_ts\": %llu, \"reaction_cycles\": %llu, "
               "\"reaction_iterations\": %lld},\n",
               u64(hyst.step_ts), u64(hyst.step_ts + reaction_cycles),
               u64(reaction_cycles), static_cast<long long>(reaction_iters));
  std::fprintf(f,
               "  \"oscillation\": {\"hold\": %lld, "
               "\"hysteresis_reconfigs_in_step\": %llu, "
               "\"degenerate_reconfigs_in_step\": %llu, "
               "\"hysteresis_reconfigs_total\": %llu, "
               "\"degenerate_reconfigs_total\": %llu},\n",
               static_cast<long long>(s.hold), u64(count_in_window(hyst)),
               u64(count_in_window(osc)), u64(hyst.reconfig_ts.size()),
               u64(osc.reconfig_ts.size()));
  std::fprintf(f,
               "  \"totals\": {\"cycles\": %llu, \"jobs\": %llu, "
               "\"reconfigurations\": %llu}\n}\n",
               u64(hyst.result.total_cycles), u64(hyst.result.jobs),
               u64(hyst.result.sched.reconfigurations));
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_adapt.json";
  std::string trace_path =
      bench::parse_trace_flag(argc, argv, "bench_adapt_trace.json");
  if (trace_path.empty()) trace_path = "bench_adapt_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      g_smoke = true;
    else if (std::strncmp(argv[i], "--trace", 7) == 0)
      ;  // handled by parse_trace_flag
    else
      out = argv[i];
  }

  AdaptScale s;
  if (g_smoke) {
    s.iterations = 160;
    s.step_at = 40;
    s.restore_at = 120;
    std::printf("(smoke mode: reduced run, same checks)\n");
  }

  obs::TraceSession hyst_session;
  AdaptRun hyst = run_leg(s, /*hysteresis=*/true, &hyst_session);
  obs::TraceSession osc_session;
  AdaptRun osc = run_leg(s, /*hysteresis=*/false, &osc_session);

  // Reaction: load-step onset to the first splice after it.
  uint64_t first_after = 0;
  int64_t first_iter = -1;
  for (size_t i = 0; i < hyst.reconfig_ts.size(); ++i) {
    if (hyst.reconfig_ts[i] >= hyst.step_ts) {
      first_after = hyst.reconfig_ts[i];
      first_iter = hyst.reconfig_iter[i];
      break;
    }
  }
  SUP_CHECK_MSG(first_after != 0,
                "policy never reacted to the load step (no reconfiguration "
                "marker after step_at)");
  uint64_t reaction_cycles = first_after - hyst.step_ts;
  int64_t reaction_iters = first_iter - s.step_at;

  std::printf("reaction: step at iter %lld (ts %llu) -> splice at iter %lld "
              "(ts %llu): %llu cycles, %lld iterations\n",
              static_cast<long long>(s.step_at),
              static_cast<unsigned long long>(hyst.step_ts),
              static_cast<long long>(first_iter),
              static_cast<unsigned long long>(first_after),
              static_cast<unsigned long long>(reaction_cycles),
              static_cast<long long>(reaction_iters));
  std::printf("oscillation: hysteresis %zu reconfigs in step window "
              "(%zu total), degenerate %zu (%zu total)\n",
              count_in_window(hyst), hyst.reconfig_ts.size(),
              count_in_window(osc), osc.reconfig_ts.size());

  // Acceptance: the hysteresis leg switches once per load edge (disable
  // at the step + enable at the restore, nothing else); the degenerate
  // band oscillates strictly more.
  bool failed = false;
  if (hyst.reconfig_ts.size() != 2) {
    std::printf("FAIL: hysteresis leg made %zu reconfigurations, want 2\n",
                hyst.reconfig_ts.size());
    failed = true;
  }
  if (osc.reconfig_ts.size() <= hyst.reconfig_ts.size()) {
    std::printf("FAIL: degenerate band did not oscillate (%zu <= %zu)\n",
                osc.reconfig_ts.size(), hyst.reconfig_ts.size());
    failed = true;
  }

  write_json(out, s, hyst, osc, reaction_cycles, reaction_iters);
  if (!obs::write_chrome_trace(hyst_session, trace_path)) return 1;
  std::printf("trace: wrote %s\n", trace_path.c_str());
  bench::teardown();
  if (failed) return 1;
  std::printf("OK\n");
  return 0;
}
