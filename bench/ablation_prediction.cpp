// Ablation — performance prediction accuracy (the Fig. 1 "Prediction"
// path; the paper's companion tool is PAM-SoC [30]).
//
// Profiles each application for a few iterations on one simulated core,
// evaluates the SPC contention model for 1..9 processors, and compares
// against the measured simulator speedups.
#include "bench_util.hpp"
#include "perf/predict.hpp"

namespace {

void run_app(const std::string& name, const std::string& spec,
             int64_t frames) {
  auto prog = bench::build_program(spec);

  // Profile.
  hinch::SimResult base =
      bench::run_sim(*prog, std::min<int64_t>(frames, 12), 1,
                     /*sync_costs=*/false);
  std::vector<double> cost(base.task_cycles.size(), 0);
  for (size_t i = 0; i < cost.size(); ++i)
    if (base.task_runs[i])
      cost[i] = static_cast<double>(base.task_cycles[i]) /
                static_cast<double>(base.task_runs[i]);

  uint64_t t1 =
      bench::run_sim(*prog, frames, 1, /*sync_costs=*/false).total_cycles;
  perf::Prediction p1 = perf::predict_from_profile(*prog, cost, 1);

  std::printf("%s:\n", name.c_str());
  std::printf("  %-6s %12s %12s %10s\n", "cores", "measured", "predicted",
              "error");
  for (int cores = 1; cores <= 9; ++cores) {
    uint64_t t = cores == 1
                     ? t1
                     : bench::run_sim(*prog, frames, cores).total_cycles;
    double measured = static_cast<double>(t1) / static_cast<double>(t);
    perf::Prediction pc = perf::predict_from_profile(*prog, cost, cores);
    double predicted = p1.total(frames) / pc.total(frames);
    std::printf("  %-6d %12.2f %12.2f %9.1f%%\n", cores, measured, predicted,
                100.0 * (predicted - measured) / measured);
  }
}

}  // namespace

int main() {
  std::printf("Ablation: SPC prediction vs simulator (speedups)\n\n");
  {
    apps::PipConfig c = bench::paper_pip(1);
    c.frames = 48;
    run_app("PiP-1", apps::pip_xspcl(c), c.frames);
  }
  {
    apps::JpipConfig c = bench::paper_jpip(1);
    c.frames = 12;
    run_app("JPiP-1", apps::jpip_xspcl(c), c.frames);
  }
  {
    apps::BlurConfig c = bench::paper_blur(3);
    c.frames = 48;
    run_app("Blur-3", apps::blur_xspcl(c), c.frames);
  }
  std::printf(
      "\nExpected: the analytic model tracks the simulator within a\n"
      "modest error band; it ignores cache contention, so it is\n"
      "optimistic where memory traffic dominates (JPiP).\n");
  bench::teardown();
  return 0;
}
