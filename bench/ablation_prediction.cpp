// Ablation — performance prediction accuracy (the Fig. 1 "Prediction"
// path; the paper's companion tool is PAM-SoC [30]).
//
// Profiles each application for a few iterations on one simulated core,
// evaluates the SPC contention model for 1..9 processors, and compares
// against the measured simulator speedups.
//
// The (app x cores) measurement grid runs on the parallel sweep driver;
// each point builds its own Program. The analytic predictions are
// evaluated afterwards from the profile points.
#include "bench_util.hpp"
#include "perf/predict.hpp"

namespace {

struct AppDef {
  std::string name;
  std::string spec;
  int64_t frames;
};

}  // namespace

int main() {
  std::printf("Ablation: SPC prediction vs simulator (speedups)\n\n");

  std::vector<AppDef> defs;
  {
    apps::PipConfig c = bench::paper_pip(1);
    c.frames = 48;
    defs.push_back({"PiP-1", apps::pip_xspcl(c), c.frames});
  }
  {
    apps::JpipConfig c = bench::paper_jpip(1);
    c.frames = 12;
    defs.push_back({"JPiP-1", apps::jpip_xspcl(c), c.frames});
  }
  {
    apps::BlurConfig c = bench::paper_blur(3);
    c.frames = 48;
    defs.push_back({"Blur-3", apps::blur_xspcl(c), c.frames});
  }

  // Per app, 10 points: the short profiling run, then full runs on
  // 1..9 cores (sync costs off at 1 core).
  constexpr int kPerApp = 10;
  std::vector<hinch::SimResult> meas = bench::parallel_sweep(
      static_cast<int>(defs.size()) * kPerApp,
      [&](int idx) -> hinch::SimResult {
        const AppDef& d = defs[static_cast<size_t>(idx / kPerApp)];
        int j = idx % kPerApp;
        auto prog = bench::build_program(d.spec);
        if (j == 0)
          return bench::run_sim(*prog, std::min<int64_t>(d.frames, 12), 1,
                                /*sync_costs=*/false);
        if (j == 1)
          return bench::run_sim(*prog, d.frames, 1, /*sync_costs=*/false);
        return bench::run_sim(*prog, d.frames, j);
      });

  for (size_t a = 0; a < defs.size(); ++a) {
    const AppDef& d = defs[a];
    const hinch::SimResult* row = &meas[a * kPerApp];
    const hinch::SimResult& base = row[0];
    std::vector<double> cost(base.task_cycles.size(), 0);
    for (size_t i = 0; i < cost.size(); ++i)
      if (base.task_runs[i])
        cost[i] = static_cast<double>(base.task_cycles[i]) /
                  static_cast<double>(base.task_runs[i]);

    // The prediction model only needs the program's task graph.
    auto prog = bench::build_program(d.spec);
    uint64_t t1 = row[1].total_cycles;
    perf::Prediction p1 = perf::predict_from_profile(*prog, cost, 1);

    std::printf("%s:\n", d.name.c_str());
    std::printf("  %-6s %12s %12s %10s\n", "cores", "measured", "predicted",
                "error");
    for (int cores = 1; cores <= 9; ++cores) {
      uint64_t t = cores == 1 ? t1 : row[cores].total_cycles;
      double measured = static_cast<double>(t1) / static_cast<double>(t);
      perf::Prediction pc = perf::predict_from_profile(*prog, cost, cores);
      double predicted = p1.total(d.frames) / pc.total(d.frames);
      std::printf("  %-6d %12.2f %12.2f %9.1f%%\n", cores, measured,
                  predicted, 100.0 * (predicted - measured) / measured);
    }
  }
  std::printf(
      "\nExpected: the analytic model tracks the simulator within a\n"
      "modest error band; it ignores cache contention, so it is\n"
      "optimistic where memory traffic dominates (JPiP).\n");
  bench::teardown();
  return 0;
}
