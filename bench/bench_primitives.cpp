// Microbenchmarks (google-benchmark) for the runtime primitives and the
// substrates: stream handoff, event queues, scheduler job dispatch, XML
// parsing, XSPCL loading, JPEG codec, and the image kernels. These put
// real numbers behind the paper's claim that "the overhead of XSPCL is
// negligible because the generated glue code is only run at
// initialization time" (§1) — load/build cost is one-time, per-job
// runtime costs are small, and kernels dominate.
#include <benchmark/benchmark.h>

#include "apps/apps.hpp"
#include "components/components.hpp"
#include "hinch/runtime.hpp"
#include "media/jpeg.hpp"
#include "media/kernels.hpp"
#include "media/synth.hpp"
#include "sp/graph.hpp"
#include "xml/parser.hpp"
#include "xspcl/loader.hpp"

namespace {

void BM_StreamWriteRead(benchmark::State& state) {
  hinch::Stream s("bench", 5);
  media::FramePtr frame =
      media::make_frame(media::PixelFormat::kGray, 64, 64);
  int64_t iter = 0;
  for (auto _ : state) {
    s.write(iter, hinch::Packet::of_frame(frame));
    benchmark::DoNotOptimize(s.read(iter));
    ++iter;
  }
}
BENCHMARK(BM_StreamWriteRead);

void BM_EventQueuePushPoll(benchmark::State& state) {
  hinch::EventQueue q("bench");
  for (auto _ : state) {
    q.push({"e", "payload"});
    benchmark::DoNotOptimize(q.poll());
  }
}
BENCHMARK(BM_EventQueuePushPoll);

// Per-job scheduling overhead of the whole runtime (thread backend, one
// worker, trivial components): wall time divided by jobs.
void BM_SchedulerJobOverhead(benchmark::State& state) {
  components::register_standard_globally();
  const char* spec = R"(
<xspcl><procedure name="main"><body>
  <component name="t" class="event_ticker">
    <param name="event" value="e"/><param name="queue" value="q"/>
    <param name="period" value="1000000"/>
  </component>
</body></procedure></xspcl>)";
  auto prog =
      xspcl::build_program(spec, hinch::ComponentRegistry::global());
  SUP_CHECK(prog.is_ok());
  for (auto _ : state) {
    hinch::RunConfig run;
    run.iterations = 1000;
    hinch::ThreadResult r = hinch::run_on_threads(*prog.value(), run, 1);
    benchmark::DoNotOptimize(r.jobs);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerJobOverhead)->Unit(benchmark::kMillisecond);

// Scaling of the work-stealing thread pool on a job-dense graph: 64
// independent trivial tasks per iteration, so per-job runtime overhead
// (dequeue, dependency release, completion) dominates and any executor
// serialization shows up directly as lost throughput. Reported counter:
// jobs per second, plus the executor's steal/park statistics.
void BM_ThreadPoolJobDense(benchmark::State& state) {
  components::register_standard_globally();
  constexpr int kTasks = 64;
  constexpr int64_t kIters = 50;
  std::vector<sp::NodePtr> blocks;
  blocks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    sp::LeafSpec spec;
    spec.instance = "tick" + std::to_string(i);
    spec.klass = "event_ticker";
    spec.params = {{"event", "e"},
                   {"queue", "q"},
                   {"period", "1000000"}};
    blocks.push_back(sp::make_leaf(std::move(spec)));
  }
  sp::NodePtr g = sp::make_par(sp::ParShape::kTask, 1, std::move(blocks));
  auto prog =
      hinch::Program::build(*g, hinch::ComponentRegistry::global());
  SUP_CHECK(prog.is_ok());
  int workers = static_cast<int>(state.range(0));
  uint64_t steals = 0;
  uint64_t parks = 0;
  for (auto _ : state) {
    hinch::RunConfig run;
    run.iterations = kIters;
    run.window = 4;
    hinch::ThreadResult r = hinch::run_on_threads(*prog.value(), run, workers);
    benchmark::DoNotOptimize(r.jobs);
    steals += r.steals;
    parks += r.idle_parks;
  }
  state.SetItemsProcessed(state.iterations() * kTasks * kIters);
  state.counters["steals"] = benchmark::Counter(
      static_cast<double>(steals), benchmark::Counter::kAvgIterations);
  state.counters["parks"] = benchmark::Counter(
      static_cast<double>(parks), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ThreadPoolJobDense)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_XmlParse(benchmark::State& state) {
  apps::PipConfig c;
  c.pips = 2;
  std::string spec = apps::pip_xspcl(c);
  for (auto _ : state) {
    auto r = xml::parse(spec);
    benchmark::DoNotOptimize(r.is_ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(spec.size()));
}
BENCHMARK(BM_XmlParse);

// The paper's "glue code runs only at initialization" claim: how long
// does the full XSPCL -> running Program path take?
void BM_XspclLoadAndBuild(benchmark::State& state) {
  components::register_standard_globally();
  apps::BlurConfig c;
  c.width = 96;
  c.height = 72;
  c.clip_frames = 2;
  std::string spec = apps::blur_xspcl(c);
  for (auto _ : state) {
    auto prog =
        xspcl::build_program(spec, hinch::ComponentRegistry::global());
    benchmark::DoNotOptimize(prog.is_ok());
  }
}
BENCHMARK(BM_XspclLoadAndBuild)->Unit(benchmark::kMicrosecond);

void BM_JpegEncode(benchmark::State& state) {
  media::SynthSpec spec{.seed = 1, .width = 320, .height = 240};
  media::FramePtr frame = media::make_synth_frame(spec, 0);
  for (auto _ : state) {
    auto bytes = media::jpeg::encode(*frame, 75);
    benchmark::DoNotOptimize(bytes.is_ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(frame->bytes()));
}
BENCHMARK(BM_JpegEncode)->Unit(benchmark::kMillisecond);

void BM_JpegDecode(benchmark::State& state) {
  media::SynthSpec spec{.seed = 1, .width = 320, .height = 240};
  media::FramePtr frame = media::make_synth_frame(spec, 0);
  auto bytes = media::jpeg::encode(*frame, 75);
  SUP_CHECK(bytes.is_ok());
  for (auto _ : state) {
    auto out = media::jpeg::decode(bytes.value().data(),
                                   bytes.value().size());
    benchmark::DoNotOptimize(out.is_ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(frame->bytes()));
}
BENCHMARK(BM_JpegDecode)->Unit(benchmark::kMillisecond);

void BM_Downscale(benchmark::State& state) {
  int factor = static_cast<int>(state.range(0));
  media::SynthSpec spec{.seed = 2, .width = 720, .height = 576,
                        .format = media::PixelFormat::kGray};
  media::FramePtr src = media::make_synth_frame(spec, 0);
  media::FramePtr dst = media::make_frame(media::PixelFormat::kGray,
                                          720 / factor, 576 / factor);
  for (auto _ : state) {
    media::downscale_box(src->plane(0), dst->plane(0), factor, 0,
                         576 / factor);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 720 *
                          576);
}
BENCHMARK(BM_Downscale)->Arg(2)->Arg(4)->Arg(16);

void BM_Blur(benchmark::State& state) {
  int kernel = static_cast<int>(state.range(0));
  media::SynthSpec spec{.seed = 3, .width = 360, .height = 288,
                        .format = media::PixelFormat::kGray};
  media::FramePtr src = media::make_synth_frame(spec, 0);
  media::FramePtr dst =
      media::make_frame(media::PixelFormat::kGray, 360, 288);
  for (auto _ : state) {
    media::blur_h(src->plane(0), dst->plane(0), kernel, 0, 288);
    media::blur_v(dst->plane(0), dst->plane(0), kernel, 0, 288);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 360 *
                          288 * 2);
}
BENCHMARK(BM_Blur)->Arg(3)->Arg(5);

}  // namespace
