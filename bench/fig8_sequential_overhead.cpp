// Figure 8 — Sequential overhead.
//
// Paper: cycles (x 1e6) of hand-written sequential versions vs the XSPCL
// versions on one node, for PiP-1, PiP-2, JPiP-1, JPiP-2, Blur-3x3,
// Blur-5x5. Reported shape: PiP overhead ~5%, JPiP ~18% (driven by extra
// cache misses after splitting fused kernels into stream-connected
// components), Blur ~0 (<1.1%, no fusion difference).
//
// Also reproduces the §4.1 profiling claim: the XSPCL JPiP shows
// significantly more cache misses than the sequential version.
//
// The six (sequential, xspcl) pairs are independent deterministic sims
// and run on the parallel sweep driver; rows print in definition order.
#include <functional>

#include "bench_util.hpp"

namespace {

struct RowDef {
  std::string name;
  std::function<apps::SeqResult()> seq;
  std::string spec;
  int64_t frames;
};

struct Meas {
  uint64_t cycles;
  uint64_t misses;  // fetches that had to go to memory (L2 misses)
};

struct Row {
  std::string name;
  uint64_t seq_cycles;
  uint64_t xspcl_cycles;
  uint64_t seq_misses;
  uint64_t xspcl_misses;
};

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path =
      bench::parse_trace_flag(argc, argv, "fig8_trace.json");
  std::printf("Figure 8: sequential overhead (cycles x 1e6, 1 core)\n");
  std::printf("%-10s %14s %14s %10s %16s\n", "app", "sequential", "xspcl",
              "overhead", "L2-miss ratio");

  std::vector<RowDef> defs;
  for (int pips : {1, 2}) {
    apps::PipConfig c = bench::paper_pip(pips);
    defs.push_back({"PiP-" + std::to_string(pips),
                    [c] { return apps::run_pip_sequential(c); },
                    apps::pip_xspcl(c), c.frames});
  }
  for (int pips : {1, 2}) {
    apps::JpipConfig c = bench::paper_jpip(pips);
    defs.push_back({"JPiP-" + std::to_string(pips),
                    [c] { return apps::run_jpip_sequential(c); },
                    apps::jpip_xspcl(c), c.frames});
  }
  for (int kernel : {3, 5}) {
    apps::BlurConfig c = bench::paper_blur(kernel);
    defs.push_back(
        {"Blur-" + std::to_string(kernel) + "x" + std::to_string(kernel),
         [c] { return apps::run_blur_sequential(c); }, apps::blur_xspcl(c),
         c.frames});
  }

  // Per row: even point = hand-written sequential, odd point = the
  // XSPCL version on one simulated core.
  std::vector<Meas> meas = bench::parallel_sweep(
      static_cast<int>(defs.size()) * 2, [&](int idx) -> Meas {
        const RowDef& d = defs[static_cast<size_t>(idx / 2)];
        if (idx % 2 == 0) {
          apps::SeqResult s = d.seq();
          return Meas{s.cycles, s.mem.mem_fetches};
        }
        auto prog = bench::build_program(d.spec);
        hinch::SimResult r = bench::run_sim(*prog, d.frames, /*cores=*/1);
        return Meas{r.total_cycles, r.mem.mem_fetches};
      });

  std::vector<Row> rows;
  for (size_t i = 0; i < defs.size(); ++i)
    rows.push_back(Row{defs[i].name, meas[2 * i].cycles, meas[2 * i + 1].cycles,
                       meas[2 * i].misses, meas[2 * i + 1].misses});

  for (const Row& row : rows) {
    double overhead = 100.0 * (static_cast<double>(row.xspcl_cycles) /
                                   static_cast<double>(row.seq_cycles) -
                               1.0);
    double miss_ratio = row.seq_misses
                            ? static_cast<double>(row.xspcl_misses) /
                                  static_cast<double>(row.seq_misses)
                            : 0.0;
    std::printf("%-10s %14.1f %14.1f %9.1f%% %15.2fx\n", row.name.c_str(),
                bench::mcycles(row.seq_cycles),
                bench::mcycles(row.xspcl_cycles), overhead, miss_ratio);
  }

  std::printf(
      "\nPaper shape: PiP ~5%% overhead, JPiP largest (~18%%, extra cache\n"
      "misses from de-fused kernels - see the miss ratio column), Blur ~0%%.\n");

  if (!trace_path.empty()) {
    // Figure 8 is the 1-core comparison: trace the XSPCL PiP-1 run.
    apps::PipConfig c = bench::paper_pip(1);
    bench::write_sim_trace(apps::pip_xspcl(c), c.frames, /*cores=*/1,
                           trace_path);
  }
  bench::teardown();
  return 0;
}
