// Figure 9 — Parallel speedup on the SpaceCAKE tile (1..9 cores).
//
// Paper: speedup of PiP-1/2, JPiP-1/2, Blur-3/5 relative to the fastest
// sequential version of each application; parallel runs at 1 node
// disable all synchronization operations. Reported shape: good
// efficiency for all; Blur best (largest compute-to-communication
// ratio), JPiP worst (carries its ~18% sequential overhead).
//
// The (series x cores) grid is a set of independent deterministic sims,
// so the points run on the parallel sweep driver; results are collected
// by index and the printed table is byte-identical to a sequential run.
#include <functional>

#include "bench_util.hpp"

namespace {

constexpr int kMaxCores = 9;

struct SeriesDef {
  std::string name;
  std::string spec;
  int64_t frames;
  std::function<uint64_t()> seq_cycles;  // hand-written sequential run
};

struct Series {
  std::string name;
  std::vector<double> speedup;
};

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path =
      bench::parse_trace_flag(argc, argv, "fig9_trace.json");
  std::printf("Figure 9: speedup vs cores (relative to fastest sequential)\n");

  std::vector<SeriesDef> defs;
  for (int pips : {1, 2}) {
    apps::PipConfig c = bench::paper_pip(pips);
    defs.push_back({"PiP-" + std::to_string(pips), apps::pip_xspcl(c),
                    c.frames,
                    [c] { return apps::run_pip_sequential(c).cycles; }});
  }
  for (int pips : {1, 2}) {
    apps::JpipConfig c = bench::paper_jpip(pips);
    defs.push_back({"JPiP-" + std::to_string(pips), apps::jpip_xspcl(c),
                    c.frames,
                    [c] { return apps::run_jpip_sequential(c).cycles; }});
  }
  for (int kernel : {3, 5}) {
    apps::BlurConfig c = bench::paper_blur(kernel);
    defs.push_back({"Blur-" + std::to_string(kernel), apps::blur_xspcl(c),
                    c.frames,
                    [c] { return apps::run_blur_sequential(c).cycles; }});
  }

  // Per series: point 0 = hand-written sequential, point 1 = 1-core
  // XSPCL with synchronization disabled ("parallel runs at 1 node
  // disable all synchronization operations"), points 2..9 = that core
  // count. Every point builds its own Program.
  const int per_series = kMaxCores + 1;
  std::vector<uint64_t> cycles = bench::parallel_sweep(
      static_cast<int>(defs.size()) * per_series, [&](int idx) -> uint64_t {
        const SeriesDef& d = defs[static_cast<size_t>(idx / per_series)];
        int point = idx % per_series;
        if (point == 0) return d.seq_cycles();
        auto prog = bench::build_program(d.spec);
        if (point == 1)
          return bench::run_sim(*prog, d.frames, 1, /*sync_costs=*/false)
              .total_cycles;
        return bench::run_sim(*prog, d.frames, point).total_cycles;
      });

  std::vector<Series> series;
  for (size_t s = 0; s < defs.size(); ++s) {
    const uint64_t* row = &cycles[s * static_cast<size_t>(per_series)];
    uint64_t seq = row[0];
    uint64_t xspcl1 = row[1];
    // "All speedup measurements are relative to the fastest sequential
    // version of the application. For Blur, this is the parallel version."
    uint64_t base = std::min(seq, xspcl1);
    Series out{defs[s].name, {}};
    for (int cores = 1; cores <= kMaxCores; ++cores) {
      uint64_t t = cores == 1 ? xspcl1 : row[cores];
      out.speedup.push_back(static_cast<double>(base) /
                            static_cast<double>(t));
    }
    series.push_back(std::move(out));
  }

  std::printf("%-8s", "cores");
  for (const Series& s : series) std::printf("%9s", s.name.c_str());
  std::printf("\n");
  for (int cores = 1; cores <= kMaxCores; ++cores) {
    std::printf("%-8d", cores);
    for (const Series& s : series)
      std::printf("%9.2f", s.speedup[static_cast<size_t>(cores - 1)]);
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: all scale well; Blur best (highest compute/comm\n"
      "ratio); JPiP lowest (sequential overhead carries over).\n");

  if (!trace_path.empty()) {
    // Trace the PiP-2 speedup point on 4 cores: per-core utilization in
    // the trace matches the table's speedup for that row.
    apps::PipConfig c = bench::paper_pip(2);
    bench::write_sim_trace(apps::pip_xspcl(c), c.frames, /*cores=*/4,
                           trace_path);
  }
  bench::teardown();
  return 0;
}
