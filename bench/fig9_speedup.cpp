// Figure 9 — Parallel speedup on the SpaceCAKE tile (1..9 cores).
//
// Paper: speedup of PiP-1/2, JPiP-1/2, Blur-3/5 relative to the fastest
// sequential version of each application; parallel runs at 1 node
// disable all synchronization operations. Reported shape: good
// efficiency for all; Blur best (largest compute-to-communication
// ratio), JPiP worst (carries its ~18% sequential overhead).
#include "bench_util.hpp"

namespace {

constexpr int kMaxCores = 9;

struct Series {
  std::string name;
  uint64_t base;  // fastest sequential version, cycles
  std::vector<double> speedup;
};

Series run_series(const std::string& name, uint64_t seq_cycles,
                  const std::string& spec, int64_t frames) {
  auto prog = bench::build_program(spec);
  Series s;
  s.name = name;
  // "All speedup measurements are relative to the fastest sequential
  // version of the application. For Blur, this is the parallel version."
  uint64_t xspcl1 =
      bench::run_sim(*prog, frames, 1, /*sync_costs=*/false).total_cycles;
  s.base = std::min(seq_cycles, xspcl1);
  for (int cores = 1; cores <= kMaxCores; ++cores) {
    uint64_t t =
        cores == 1
            ? xspcl1
            : bench::run_sim(*prog, frames, cores).total_cycles;
    s.speedup.push_back(static_cast<double>(s.base) /
                        static_cast<double>(t));
  }
  return s;
}

}  // namespace

int main() {
  std::printf("Figure 9: speedup vs cores (relative to fastest sequential)\n");

  std::vector<Series> series;
  for (int pips : {1, 2}) {
    apps::PipConfig c = bench::paper_pip(pips);
    series.push_back(run_series("PiP-" + std::to_string(pips),
                                apps::run_pip_sequential(c).cycles,
                                apps::pip_xspcl(c), c.frames));
  }
  for (int pips : {1, 2}) {
    apps::JpipConfig c = bench::paper_jpip(pips);
    series.push_back(run_series("JPiP-" + std::to_string(pips),
                                apps::run_jpip_sequential(c).cycles,
                                apps::jpip_xspcl(c), c.frames));
  }
  for (int kernel : {3, 5}) {
    apps::BlurConfig c = bench::paper_blur(kernel);
    series.push_back(run_series("Blur-" + std::to_string(kernel),
                                apps::run_blur_sequential(c).cycles,
                                apps::blur_xspcl(c), c.frames));
  }

  std::printf("%-8s", "cores");
  for (const Series& s : series) std::printf("%9s", s.name.c_str());
  std::printf("\n");
  for (int cores = 1; cores <= kMaxCores; ++cores) {
    std::printf("%-8d", cores);
    for (const Series& s : series)
      std::printf("%9.2f", s.speedup[static_cast<size_t>(cores - 1)]);
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: all scale well; Blur best (highest compute/comm\n"
      "ratio); JPiP lowest (sequential overhead carries over).\n");
  bench::teardown();
  return 0;
}
