// Simulator hot-path microbench: wall-clock (host) cost of the cache
// model, the event engine, and the end-to-end Fig. 8 suite, comparing
// the flat intrusive structures against the list/std::function reference
// implementations they replaced. Emits machine-readable BENCH_sim.json.
//
// Both legs of every comparison are semantically identical — equal
// MemStats, equal event counts, equal simulated cycles — which this
// bench asserts as it measures. See docs/PERF.md ("Simulator hot path").
//
// Usage: bench_sim [--smoke] [output.json]   (default ./BENCH_sim.json)
//   --smoke  shrink the workloads for a CI smoke run and skip the
//            acceptance bars (still writes the json).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"

namespace {

bool g_smoke = false;
bench::BenchReport g_report("bench_sim");

// --- cache model: chunk-access pattern --------------------------------------
//
// A deterministic multi-core access trace over the MemorySystem: per-core
// streaming reads (the stream-buffer pattern), pseudo-random mixed
// reads/writes over a large shared region (coherence + invalidation
// traffic), and scratch-region churn (register / touch / release). The
// same trace runs on both LRU engines; stats must match exactly.

struct PatternResult {
  sim::MemStats stats;
  uint64_t chunk_accesses = 0;
  sim::Cycles release_marker = 0;  // defeats dead-code elimination
};

PatternResult run_cache_pattern(sim::LruImpl impl, int iters) {
  sim::CacheConfig cfg;
  cfg.cores = 4;
  cfg.lru_impl = impl;
  sim::MemorySystem mem(cfg);

  const uint64_t frame_bytes = 4u << 20;  // streams through L2
  const uint64_t coeff_bytes = 8u << 20;  // mixed working set
  sim::RegionId frame = mem.register_region(frame_bytes, "frame");
  sim::RegionId coeff = mem.register_region(coeff_bytes, "coeff");

  PatternResult out;
  uint64_t rng = 0x9e3779b97f4a7c15ULL;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int it = 0; it < iters; ++it) {
    // Streaming: each core walks its own quarter of the frame in 4 KiB
    // touches (sequential chunk keys, the best case for both engines).
    for (int core = 0; core < cfg.cores; ++core) {
      uint64_t base = static_cast<uint64_t>(core) * (frame_bytes / 4);
      for (uint64_t off = 0; off + 4096 <= frame_bytes / 4; off += 4096)
        out.release_marker += mem.access(core, frame, base + off, 4096, false);
    }
    // Mixed: pseudo-random 2 KiB touches across the shared coefficient
    // region, one write in four — exercises the presence-mask
    // invalidation path and cross-core L1 churn.
    for (int i = 0; i < 4096; ++i) {
      int core = static_cast<int>(next() % 4);
      uint64_t off = (next() % (coeff_bytes - 2048)) & ~1023ull;
      bool write = (i & 3) == 0;
      out.release_marker += mem.access(core, coeff, off, 2048, write);
    }
    // Churn: a 256 KiB scratch region every core touches, then release —
    // the task-local buffer lifecycle, and the path where the reference
    // engine pays O(region chunks x caches).
    sim::RegionId scratch = mem.register_region(256u << 10, "scratch");
    for (int core = 0; core < cfg.cores; ++core)
      out.release_marker += mem.access(core, scratch, 0, 256u << 10, true);
    mem.release_region(scratch);
  }
  out.stats = mem.stats();
  out.chunk_accesses = out.stats.accesses;
  return out;
}

void bench_cache() {
  const int iters = g_smoke ? 2 : 12;
  PatternResult flat_check = run_cache_pattern(sim::LruImpl::kFlat, iters);
  PatternResult list_check =
      run_cache_pattern(sim::LruImpl::kListReference, iters);
  SUP_CHECK_MSG(flat_check.stats == list_check.stats,
                "flat and list cache engines disagree on the trace");

  auto [list_ms, flat_ms] = bench::best_ms_pair(
      g_smoke ? 1 : 7,
      [&] { run_cache_pattern(sim::LruImpl::kListReference, iters); },
      [&] { run_cache_pattern(sim::LruImpl::kFlat, iters); });
  g_report.add("chunk_access_pattern", list_ms, flat_ms,
               "multi-core stream+mixed+churn trace, " +
                   std::to_string(flat_check.chunk_accesses) +
                   " chunk accesses");
  std::printf("  chunk accesses/sec: list %.1fM, flat %.1fM\n",
              static_cast<double>(flat_check.chunk_accesses) / list_ms / 1e3,
              static_cast<double>(flat_check.chunk_accesses) / flat_ms / 1e3);
}

// --- event engine ------------------------------------------------------------
//
// The workload: a fixed fan of self-rescheduling events (what the sim
// executor's core loops look like) drained to a fixed total. The
// reference is the pre-optimization engine shape: std::function payloads
// in a std::priority_queue ordered by the identical (time, seq) key.

class RefEngine {
 public:
  void schedule_after(sim::Cycles delta, std::function<void()> fn) {
    heap_.push(Entry{now_ + delta, next_seq_++, std::move(fn)});
  }
  sim::Cycles now() const { return now_; }
  sim::Cycles run() {
    while (!heap_.empty()) {
      Entry e = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      now_ = e.time;
      e.fn();
    }
    return now_;
  }

 private:
  struct Entry {
    sim::Cycles time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  sim::Cycles now_ = 0;
  uint64_t next_seq_ = 0;
};

template <typename Engine>
uint64_t run_event_workload(uint64_t total) {
  Engine eng;
  uint64_t done = 0;
  uint64_t order_check = 0;
  constexpr int kFan = 64;
  // The step functions must outlive the scheduling loop — scheduled
  // events re-enter them by index.
  std::vector<std::function<void(int)>> steps(kFan);
  for (int i = 0; i < kFan; ++i) {
    // Same self-rescheduling shape and capture footprint as the sim
    // executor's core-step closures.
    steps[static_cast<size_t>(i)] = [&, i](int hop) {
      order_check = order_check * 31 + static_cast<uint64_t>(i);
      if (++done >= total) return;
      eng.schedule_after(static_cast<sim::Cycles>(1 + (i * 7 + hop) % 13),
                         [&, i, hop] { steps[static_cast<size_t>(i)](hop + 1); });
    };
    eng.schedule_after(static_cast<sim::Cycles>(i % 5),
                       [&, i] { steps[static_cast<size_t>(i)](i); });
  }
  sim::Cycles end = eng.run();
  SUP_CHECK(done >= total && end > 0);
  return order_check * 31 + end;
}

void bench_engine() {
  const uint64_t total = g_smoke ? 50'000 : 1'000'000;
  uint64_t ref_sig = run_event_workload<RefEngine>(total);
  uint64_t opt_sig = run_event_workload<sim::Engine>(total);
  SUP_CHECK_MSG(ref_sig == opt_sig,
                "pooled engine drained events in a different order");

  auto [ref_ms, opt_ms] = bench::best_ms_pair(
      g_smoke ? 1 : 7, [&] { run_event_workload<RefEngine>(total); },
      [&] { run_event_workload<sim::Engine>(total); });
  g_report.add("event_engine", ref_ms, opt_ms,
               std::to_string(total) + " self-rescheduling events");
  std::printf("  events/sec: reference %.1fM, pooled %.1fM\n",
              static_cast<double>(total) / ref_ms / 1e3,
              static_cast<double>(total) / opt_ms / 1e3);
}

// --- end-to-end: the Fig. 8 suite --------------------------------------------
//
// The full Fig. 8 comparison — six hand-written sequential runs plus
// their six XSPCL programs — run end to end through the simulator stack
// (scheduler + job queue + region table + cache model + event engine)
// on each LRU engine. Each leg is recorded once with the kernels
// executing (apps::SeqTrace for the sequential versions,
// hinch::ChargeTrace for the XSPCL sims); the timed legs re-simulate
// from the traces, so they measure the simulator itself rather than the
// media kernels (those are bench_media's subject). Simulated cycles are
// asserted equal across the recording and both replay legs. Apps are
// recorded, timed, and released one at a time to bound trace memory.

struct SuiteApp {
  std::string name;
  std::string spec;
  int64_t frames = 0;
  std::unique_ptr<hinch::Program> prog;  // reset by every run
  apps::SeqTrace seq_trace;
  hinch::ChargeTrace xspcl_trace;
  uint64_t seq_cycles = 0;
  uint64_t xspcl_cycles = 0;
};

// Both legs of one Fig. 8 row, re-simulated from the traces.
void replay_app(SuiteApp& app, sim::LruImpl impl) {
  sim::CacheConfig cache;
  cache.lru_impl = impl;
  apps::SeqReplay seq = apps::replay_seq_trace(app.seq_trace, cache);
  SUP_CHECK_MSG(seq.cycles == app.seq_cycles,
                "replayed sequential cycles diverge from the recording");
  hinch::RunConfig run;
  run.iterations = app.frames;
  hinch::SimParams sim;
  sim.cores = 1;
  sim.cache = cache;
  sim.replay_trace = &app.xspcl_trace;
  uint64_t cycles = hinch::run_on_sim(*app.prog, run, sim).total_cycles;
  SUP_CHECK_MSG(cycles == app.xspcl_cycles,
                "replayed XSPCL cycles diverge from the recording");
}

template <typename Record>
void time_app(const std::string& name, const std::string& spec,
              int64_t frames, const Record& record_seq, double* list_ms,
              double* flat_ms) {
  SuiteApp app;
  app.name = name;
  app.spec = spec;
  app.frames = frames;
  // Record: one run of each leg with the kernels executing.
  apps::SeqResult seq = record_seq(&app.seq_trace);
  app.seq_cycles = seq.cycles;
  app.prog = bench::build_program(spec);
  {
    hinch::RunConfig run;
    run.iterations = frames;
    hinch::SimParams sim;
    sim.cores = 1;
    sim.record_trace = &app.xspcl_trace;
    app.xspcl_cycles = hinch::run_on_sim(*app.prog, run, sim).total_cycles;
  }
  // Replay legs, interleaved (best-of-N per app; the suite totals sum
  // the minima).
  auto [list, flat] = bench::best_ms_pair(
      g_smoke ? 1 : 7,
      [&] { replay_app(app, sim::LruImpl::kListReference); },
      [&] { replay_app(app, sim::LruImpl::kFlat); });
  *list_ms += list;
  *flat_ms += flat;
}

void bench_fig8_suite() {
  double list_ms = 0, flat_ms = 0;
  for (int pips : {1, 2}) {
    apps::PipConfig c = bench::paper_pip(pips);
    if (g_smoke) c.frames = 8;
    time_app(
        "PiP-" + std::to_string(pips), apps::pip_xspcl(c), c.frames,
        [&](apps::SeqTrace* t) { return apps::run_pip_sequential(c, {}, t); },
        &list_ms, &flat_ms);
  }
  for (int pips : {1, 2}) {
    apps::JpipConfig c = bench::paper_jpip(pips);
    if (g_smoke) c.frames = 4;
    time_app(
        "JPiP-" + std::to_string(pips), apps::jpip_xspcl(c), c.frames,
        [&](apps::SeqTrace* t) { return apps::run_jpip_sequential(c, {}, t); },
        &list_ms, &flat_ms);
  }
  for (int kernel : {3, 5}) {
    apps::BlurConfig c = bench::paper_blur(kernel);
    if (g_smoke) c.frames = 8;
    time_app(
        "Blur-" + std::to_string(kernel), apps::blur_xspcl(c), c.frames,
        [&](apps::SeqTrace* t) { return apps::run_blur_sequential(c, {}, t); },
        &list_ms, &flat_ms);
  }
  g_report.add("fig8_suite_end_to_end", list_ms, flat_ms,
               "all twelve Fig. 8 runs re-simulated from recorded traces");
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_sim.json";
  std::string trace_path =
      bench::parse_trace_flag(argc, argv, "bench_sim_trace.json");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      g_smoke = true;
    else if (std::strncmp(argv[i], "--trace", 7) == 0)
      ;  // handled by parse_trace_flag
    else
      out = argv[i];
  }
  if (g_smoke) std::printf("(smoke mode: reduced workloads, no bars)\n");

  bench_cache();
  bench_engine();
  bench_fig8_suite();
  g_report.write_json(out);

  if (!trace_path.empty()) {
    apps::PipConfig c = bench::paper_pip(1);
    if (g_smoke) c.frames = 8;
    bench::write_sim_trace(apps::pip_xspcl(c), c.frames, /*cores=*/2,
                           trace_path);
  }

  if (!g_smoke) {
    // Acceptance bars: >=3x on the chunk-access microbench, >=2x on the
    // end-to-end Fig. 8 suite.
    double cache_x = g_report.speedup_of("chunk_access_pattern");
    double suite_x = g_report.speedup_of("fig8_suite_end_to_end");
    if (cache_x < 3.0) {
      std::printf("FAIL: chunk_access_pattern speedup %.2fx < 3x\n", cache_x);
      return 1;
    }
    if (suite_x < 2.0) {
      std::printf("FAIL: fig8_suite_end_to_end speedup %.2fx < 2x\n", suite_x);
      return 1;
    }
  }
  bench::teardown();
  std::printf("OK\n");
  return 0;
}
